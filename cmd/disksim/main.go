// Command disksim runs disk-farm simulations through the scenario
// engine (internal/farm): a registered scenario by name, an ad-hoc run
// assembled from a trace file plus allocation, spin-down, and cache
// flags, a JSON scenario file, or a parallel grid sweep over any of
// those bases.
//
// Usage:
//
//	disksim -scenarios                       # list the catalogue
//	disksim -scenario hetero                 # run a registered scenario
//	disksim -scenario slo-sweep -seed 7      # sweeps pick an operating point
//	disksim -trace nersc.trace -algo pack -L 0.7 -threshold 1800
//	disksim -trace synth.trace -algo random -disks 100 -threshold breakeven
//	disksim -trace nersc.trace -assign out.map -disks 96 -cache 16e9
//
// Grid sweeps cross -sweep axes over the base spec (the scenario or the
// ad-hoc flags) and fan the points across -workers goroutines:
//
//	disksim -trace nersc.trace -sweep threshold=60,300,1800 -select slo=25
//	disksim -scenario paper-synth -sweep threshold=30,300 -sweep farm=20,40 -select pareto
//	disksim -trace synth.trace -sweep L=0.5,0.6,0.7,0.8 -select knee
//
// The reliability axis rides the same machinery: failure-injection
// scenarios run like any other, -afr-budget upgrades an SLO selector
// to min-energy-under-SLO-and-AFR, and -cycle-cap bounds spin-down
// cycles per disk-day (open-loop, or as the tail-budget controller's
// cycle budget):
//
//	disksim -scenario failure-injection -seed 7
//	disksim -scenario reliability-sweep -afr-budget 0.05
//	disksim -scenario bursty -cycle-cap 2
//	disksim -scenario bursty -sweep threshold=30,600 -select slo=30,afr=0.1
//
// Scenario files round-trip the same specs as JSON, so grids run
// without recompiling:
//
//	disksim -trace nersc.trace -sweep threshold=60,1800 -spec-out grid.json
//	disksim -spec grid.json -seed 7
//
// Grids too large for one machine shard into self-contained JSON
// manifests, run anywhere, and merge back byte-identically (selectors
// apply post-merge; a re-run of -run-shard resumes, skipping points its
// result file already holds):
//
//	disksim -scenario paper-synth -sweep threshold=30,300 -shards 3 -shard-out grid/
//	disksim -run-shard grid/shard-000.json        # on any machine
//	disksim -merge grid/ -select knee
//
// Or skip static partitioning entirely: -serve turns the grid into a
// work-stealing coordinator and any number of -work machines join,
// leave, or die mid-run. Leases expire and re-queue, completed points
// journal to disk as they land, and the final report is byte-identical
// to the single-process run:
//
//	disksim -scenario paper-synth -sweep threshold=30,300 -serve :9931 -journal sweep.journal
//	disksim -work http://coordinator:9931 -workers 8     # on any machine, any time
package main

import (
	"bufio"
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"io/fs"
	"math"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"sort"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"time"

	"diskpack/internal/control"
	"diskpack/internal/coord"
	"diskpack/internal/disk"
	"diskpack/internal/farm"
	"diskpack/internal/obs"
	"diskpack/internal/trace"
)

// axisFlags collects repeated -sweep flags.
type axisFlags []string

func (a *axisFlags) String() string { return strings.Join(*a, "; ") }
func (a *axisFlags) Set(s string) error {
	*a = append(*a, s)
	return nil
}

// gridUsage is appended to every -sweep/-select parse failure so a typo
// always surfaces the full vocabulary, whatever path it took in.
const gridUsage = `sweep axes (repeatable, -sweep dim=v1,v2,...):
  threshold  spin-down idleness threshold, seconds
  farm       farm size, disks
  cache      front LRU cache, bytes
  L          packing load constraint in (0,1]
  v          Pack_Disks_v group size
  rate       workload intensity, requests/s
  alloc      allocation strategy: pack, packv, random, firstfit, ffd, bestfit, chp
  seed       seed offset for independent replications
  control    online controller: tail-budget, rate-respec, static (base needs -control or a controlled scenario)
selectors (-select): none, knee, pareto, slo=SECONDS[,afr=RATE]`

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "disksim:", err)
		os.Exit(1)
	}
}

// run is the whole CLI behind a testable seam: it parses args, writes
// human output to out, and returns an error instead of exiting — every
// failure path, flag parsing included, becomes a non-zero exit in main.
// The return is named so the deferred observability stop — which
// renders the trace file and flushes the telemetry log — can fail the
// run when a sink write fails.
func run(args []string, out io.Writer) (retErr error) {
	fs := flag.NewFlagSet("disksim", flag.ContinueOnError)
	var sweeps axisFlags
	var (
		scenario    = fs.String("scenario", "", "run a registered scenario by name (see -scenarios)")
		list        = fs.Bool("scenarios", false, "list registered scenarios and exit")
		tracePath   = fs.String("trace", "", "input trace file (ad-hoc mode)")
		assignIn    = fs.String("assign", "", "file→disk map (one disk per line); overrides -algo")
		algo        = fs.String("algo", "pack", "allocator when -assign is absent: pack, pack4, random, ffd, firstfit, bestfit, chp")
		capL        = fs.Float64("L", 0.7, "load constraint for packing")
		farmN       = fs.Int("disks", 0, "farm size (0 = as many as the allocation uses)")
		threshold   = fs.String("threshold", "breakeven", "idleness threshold in seconds, 'breakeven', 'never', 'immediate', 'adaptive', or 'randomized'")
		cacheB      = fs.Float64("cache", 0, "LRU cache bytes (0 = none; paper uses 16e9)")
		seed        = fs.Int64("seed", 1, "seed for random placement and randomized policies")
		workers     = fs.Int("workers", 0, "parallel sweep simulations (0 = GOMAXPROCS)")
		simWorkers  = fs.Int("sim-workers", 1, "shard each simulation across N worker goroutines (0 = GOMAXPROCS); results are identical at any value")
		selectS     = fs.String("select", "", "sweep operating-point rule: slo=SECONDS, knee, pareto (default none)")
		specIn      = fs.String("spec", "", "run a JSON scenario file (a Spec or a Sweep; see -spec-out)")
		specOut     = fs.String("spec-out", "", "write the assembled spec/sweep as JSON and exit")
		shards      = fs.Int("shards", 0, "split the grid into N shard manifests under -shard-out instead of running it")
		shardOut    = fs.String("shard-out", "", "directory for -shards manifests (created if missing)")
		runShard    = fs.String("run-shard", "", "execute one shard manifest file and write its result file")
		shardResult = fs.String("shard-result", "", "result file for -run-shard (default: manifest path with .result.json)")
		mergeDir    = fs.String("merge", "", "merge shard result files (*.result.json) from a directory and report the sweep")
		serveAddr   = fs.String("serve", "", "serve the grid as a work-stealing coordinator on ADDR (e.g. :9931) and report when it drains")
		workURL     = fs.String("work", "", "join a coordinator as a pull-based worker (URL, e.g. http://host:9931)")
		workerName  = fs.String("name", "", "worker name for -work (default <hostname>-<pid>)")
		journalPath = fs.String("journal", "", "coordinator crash journal for -serve: completed points append here; restart with the same flags to resume")
		leaseD      = fs.Duration("lease", time.Minute, "coordinator lease: how long a worker may hold a point without a heartbeat before it re-queues")
		batchN      = fs.Int("batch", 4, "coordinator batch: max points handed out per lease request (adaptively shrunk by observed point cost)")
		token       = fs.String("token", "", "shared secret for -serve/-work: workers must present it, mismatches get 401")
		obsOut      = fs.String("obs-out", "", "write this process's span log (JSONL) to FILE; for -serve, -work, and -run-shard (name them *.spans.jsonl and fold with -merge-trace)")
		mergeTrace  = fs.String("merge-trace", "", "fold the *.spans.jsonl span logs under DIR into one Chrome-trace JSON (to -trace-out FILE, default stdout; load in Perfetto)")
		controlName = fs.String("control", "", "run closed-loop under an online controller: tail-budget, rate-respec, or static to strip a scenario's controller")
		epochF      = fs.Float64("epoch", 0, "telemetry window length in seconds for -control (default: the scenario's, or 1800)")
		budgetF     = fs.Float64("budget", 0, "p95 response-time budget in seconds for -control tail-budget (default: the scenario's, or 20)")
		afrBudget   = fs.Float64("afr-budget", 0, "annual-failure-rate budget in (0,1): upgrades an slo= selector to min-energy-under-SLO-and-AFR")
		cycleCap    = fs.Float64("cycle-cap", 0, "spin-down cycles per disk-day: caps the base spin policy (with -control tail-budget, the controller's cycle budget)")
		cpuProfile  = fs.String("cpuprofile", "", "write a CPU profile to FILE (go tool pprof)")
		memProfile  = fs.String("memprofile", "", "write a heap profile to FILE at exit (go tool pprof)")
		traceOut    = fs.String("trace-out", "", "write a single run's state timeline as Chrome-trace JSON to FILE (load in Perfetto)")
		telemOut    = fs.String("telemetry-out", "", "write a single run's per-window telemetry as JSONL to FILE")
		metricsAddr = fs.String("metrics-addr", "", "serve live Prometheus /metrics and /debug/pprof on ADDR (e.g. :9100) for the life of the run")
		verbose     = fs.Bool("v", false, "per-disk breakdown")
	)
	fs.Var(&sweeps, "sweep", "sweep axis dim=v1,v2,... (repeatable; dims: threshold, farm, cache, L, v, rate, alloc, seed, control)")
	// The FlagSet would print every parse error itself and main would
	// print it again; silence the FlagSet and report once (restoring
	// output for an explicit -h).
	fs.SetOutput(io.Discard)
	if err := fs.Parse(args); err != nil {
		if err == flag.ErrHelp {
			fs.SetOutput(out)
			fs.Usage()
			return nil
		}
		return err
	}

	var visited []string
	fs.Visit(func(f *flag.Flag) { visited = append(visited, f.Name) })
	sort.Strings(visited)
	wasSet := func(name string) bool {
		for _, v := range visited {
			if v == name {
				return true
			}
		}
		return false
	}
	// onlyFlags rejects any explicitly-set flag outside the mode's
	// allowlist: a flag the mode would silently ignore must fail loudly
	// instead.
	onlyFlags := func(mode, reason string, allowed ...string) error {
		// Profiling composes with every mode — a worker or a merge is
		// as legitimate a profile target as a plain run. So do
		// -sim-workers (it only shards the simulations the mode runs,
		// never what they compute) and -metrics-addr (live metrics
		// observe whatever the mode executes).
		ok := map[string]bool{mode: true, "cpuprofile": true, "memprofile": true, "sim-workers": true, "metrics-addr": true}
		for _, a := range allowed {
			ok[a] = true
		}
		for _, name := range visited {
			if !ok[name] {
				return fmt.Errorf("-%s ignores -%s: %s", mode, name, reason)
			}
		}
		return nil
	}

	// Start profiling before mode dispatch so every mode is coverable;
	// the deferred stop flushes on every return path out of run(),
	// which includes the graceful-SIGINT returns of -serve/-work/
	// -run-shard (interruptContext turns the signal into a normal
	// return) and of obs-file runs (startObs turns the signal into a
	// window-boundary abort). Modes without that machinery get a
	// flush-and-exit handler from startProfiles itself.
	obsFiles := *traceOut != "" || *telemOut != ""
	gracefulMode := *serveAddr != "" || *workURL != "" || *runShard != "" || obsFiles
	stopProfiles, err := startProfiles(*cpuProfile, *memProfile, gracefulMode)
	if err != nil {
		return err
	}
	defer stopProfiles()

	// Parse the grid flags before any early return: a bad -sweep or
	// -select must fail the run even alongside -scenarios, not be
	// silently swallowed by an earlier exit path.
	axes := make([]farm.Axis, 0, len(sweeps))
	for _, s := range sweeps {
		ax, err := farm.ParseAxis(s)
		if err != nil {
			return fmt.Errorf("%w\n%s", err, gridUsage)
		}
		axes = append(axes, ax)
	}
	selector := farm.Selector{}
	if *selectS != "" {
		var err error
		if selector, err = farm.ParseSelector(*selectS); err != nil {
			return fmt.Errorf("%w\n%s", err, gridUsage)
		}
	}

	// Pool-size and coordinator knobs fail loudly on nonsense instead of
	// clamping or spinning: a negative pool would silently serialize, a
	// zero batch would make every lease empty.
	if *workers < 0 {
		return fmt.Errorf("-workers %d: valid values are >= 1 (or 0 for one worker per core)", *workers)
	}
	if *simWorkers < 0 {
		return fmt.Errorf("-sim-workers %d: valid values are >= 1 (or 0 for one worker per core)", *simWorkers)
	}
	// Effective for every simulation any mode runs from here on; the
	// kernel routes non-shardable runs (cache-fronted, unplaced writes)
	// to its sequential path on its own.
	farm.SetSimWorkers(*simWorkers)

	if *list {
		if err := onlyFlags("scenarios", "it only lists the catalogue"); err != nil {
			return err
		}
		listScenarios(out)
		return nil
	}

	if *shards < 0 {
		return fmt.Errorf("-shards %d must be >= 1", *shards)
	}
	if *mergeTrace != "" {
		if err := onlyFlags("merge-trace",
			"it only folds span logs into a trace file; it takes -trace-out",
			"trace-out"); err != nil {
			return err
		}
		return mergeTraceDir(*mergeTrace, *traceOut, out)
	}
	if *workURL != "" {
		if err := onlyFlags("work",
			"a worker pulls everything from the coordinator; it takes only -workers, -name, -token, and -obs-out",
			"workers", "name", "token", "obs-out"); err != nil {
			return err
		}
		return workSweep(*workURL, *workerName, *workers, *token, *obsOut, *metricsAddr, out)
	}
	// Like the coordinator knobs below, the worker's name must not
	// outlive its mode: silently ignored flags would look like they
	// took effect.
	if wasSet("name") {
		return fmt.Errorf("-name needs -work URL")
	}
	if wasSet("token") && *serveAddr == "" {
		return fmt.Errorf("-token needs -serve ADDR or -work URL")
	}
	if *obsOut != "" && *serveAddr == "" && *runShard == "" {
		return fmt.Errorf("-obs-out needs -serve ADDR, -work URL, or -run-shard FILE (single runs use -trace-out/-telemetry-out)")
	}
	if *serveAddr != "" {
		if *leaseD < time.Second {
			return fmt.Errorf("-lease %v: valid values are >= 1s (workers heartbeat at a third of the lease)", *leaseD)
		}
		if *batchN < 1 {
			return fmt.Errorf("-batch %d: valid values are >= 1", *batchN)
		}
		for _, conflict := range []struct {
			set  bool
			name string
			why  string
		}{
			{*shards > 0, "shards", "static manifests and a work-stealing pool are different distribution modes: pick one"},
			{*specOut != "", "spec-out", "-spec-out writes files and exits; -serve runs the grid"},
			{wasSet("workers"), "workers", "the -work machines run the points; size the pool there"},
		} {
			if conflict.set {
				return fmt.Errorf("-serve cannot be combined with -%s: %s", conflict.name, conflict.why)
			}
		}
	} else {
		// The coordinator knobs must not outlive their mode: silently
		// ignored flags would look like they took effect.
		for _, name := range []string{"journal", "lease", "batch"} {
			if wasSet(name) {
				return fmt.Errorf("-%s needs -serve ADDR", name)
			}
		}
	}
	if *runShard != "" {
		if err := onlyFlags("run-shard",
			"it takes only -shard-result, -workers, and -obs-out (the manifest carries the sweep and its seed)",
			"shard-result", "workers", "obs-out"); err != nil {
			return err
		}
		return runShardFile(*runShard, *shardResult, *workers, *obsOut, out)
	}
	if *mergeDir != "" {
		if err := onlyFlags("merge",
			"it takes only -select and -v (the result files carry the sweep and its seed)",
			"select", "v"); err != nil {
			return err
		}
		return mergeShards(*mergeDir, selector, *selectS != "", *verbose, out)
	}
	// The shard companion flags must not outlive their mode: without it
	// they would be silently ignored and the grid would run locally.
	if *shardOut != "" && *shards == 0 {
		return fmt.Errorf("-shard-out needs -shards N")
	}
	if *shardResult != "" {
		return fmt.Errorf("-shard-result needs -run-shard FILE")
	}
	if *shards > 0 && *specOut != "" {
		return fmt.Errorf("-shards and -spec-out both write files and exit: pick one")
	}

	// The trace and telemetry sinks record exactly one run; the
	// multi-run and write-and-exit modes must reject them loudly (the
	// onlyFlags modes — -work, -run-shard, -merge, -scenarios —
	// already did above; grids are rejected at hasGrid below).
	if obsFiles {
		for _, conflict := range []struct {
			set  bool
			name string
		}{
			{*serveAddr != "", "serve"},
			{*specOut != "", "spec-out"},
			{*shards > 0, "shards"},
		} {
			if conflict.set {
				return fmt.Errorf("-trace-out/-telemetry-out record a single run: they cannot be combined with -%s", conflict.name)
			}
		}
	}
	// Observability starts before mode dispatch — like profiling — so
	// -metrics-addr serves whatever the mode runs; the deferred stop
	// renders the trace file and flushes the telemetry log on every
	// return path, the SIGINT abort included.
	ob, err := startObs(*traceOut, *telemOut, *metricsAddr)
	if err != nil {
		return err
	}
	defer func() {
		if serr := ob.stop(); serr != nil && retErr == nil {
			retErr = serr
		}
	}()

	controlFlags := *controlName != "" || wasSet("epoch") || wasSet("budget")
	relFlags := wasSet("afr-budget") || wasSet("cycle-cap")
	if wasSet("afr-budget") && !(*afrBudget > 0 && *afrBudget < 1) {
		return fmt.Errorf("-afr-budget %v: the annual failure rate budget must be in (0,1)", *afrBudget)
	}
	if wasSet("cycle-cap") && !(*cycleCap > 0 && !math.IsInf(*cycleCap, 0)) {
		return fmt.Errorf("-cycle-cap %v: the cycle budget must be a positive number of cycles per disk-day", *cycleCap)
	}

	if *specIn != "" {
		if len(axes) > 0 || *selectS != "" || *specOut != "" || controlFlags || relFlags {
			return fmt.Errorf("-sweep/-select/-spec-out/-control/-afr-budget/-cycle-cap cannot be combined with -spec (edit the file instead)")
		}
		f, err := os.Open(*specIn)
		if err != nil {
			return err
		}
		doc, err := farm.DecodeFile(f)
		f.Close()
		if err != nil {
			return err
		}
		if *shards > 0 {
			if doc.Sweep == nil {
				return fmt.Errorf("-shards needs a grid: %s holds a single Spec, not a Sweep", *specIn)
			}
			return writeShards(*doc.Sweep, *seed, *shards, *shardOut, out)
		}
		if *serveAddr != "" {
			if doc.Sweep == nil {
				return fmt.Errorf("-serve needs a grid: %s holds a single Spec, not a Sweep", *specIn)
			}
			return serveSweep(out, *doc.Sweep, *seed, *serveAddr, *journalPath, *leaseD, *batchN, *token, *obsOut, *verbose)
		}
		if doc.Sweep != nil {
			if obsFiles {
				return fmt.Errorf("-trace-out/-telemetry-out record a single run: %s holds a Sweep, not a Spec", *specIn)
			}
			return runSweep(out, *doc.Sweep, *seed, *workers, *verbose)
		}
		if obsFiles {
			return runObserved(out, ob, *doc.Spec, *seed, "", *verbose)
		}
		m, err := farm.Run(*doc.Spec, *seed)
		if err != nil {
			return err
		}
		printMetrics(out, m, "", doc.Spec.CacheBytes > 0, *verbose)
		return nil
	}

	// Resolve the base spec: a registered scenario or the ad-hoc flags.
	// gridBase carries a grid scenario's full sweep (richer than base +
	// axes can express, e.g. static-vs-controlled's policy axis).
	var base farm.Spec
	var gridBase *farm.Sweep
	switch {
	case *scenario != "":
		sc, ok := farm.Lookup(*scenario)
		if !ok {
			return fmt.Errorf("unknown scenario %q (use -scenarios to list)", *scenario)
		}
		if sc.Grid != nil {
			if controlFlags {
				return fmt.Errorf("-control cannot override scenario %s: its grid fixes each point's policy", sc.Name)
			}
			if wasSet("cycle-cap") {
				return fmt.Errorf("-cycle-cap cannot override scenario %s: its grid fixes each point's policy (use -afr-budget to retarget the selector)", sc.Name)
			}
			gridBase = sc.Grid
			base = sc.Grid.Base
			break
		}
		if len(axes) == 0 && *selectS == "" && *specOut == "" && *shards == 0 && *serveAddr == "" && !controlFlags && !relFlags {
			if sc.Spec.Control != nil {
				// Controlled scenarios run through the control plane so
				// the report carries the telemetry windows.
				if err := ob.beginRun(sc.Spec, *seed); err != nil {
					return err
				}
				res, err := control.RunSpec(sc.Spec, *seed)
				if err != nil {
					return ob.runErr(err)
				}
				printControlled(out, res, sc.Spec.CacheBytes > 0, *verbose)
				return nil
			}
			if obsFiles {
				if sc.Sweep != nil {
					return fmt.Errorf("-trace-out/-telemetry-out record a single run: scenario %s sweeps thresholds (run its chosen operating point as a -spec)", sc.Name)
				}
				// The file sinks need epoch windows to exist, so the
				// open-loop run streams instead (byte-identical results;
				// the report is the unified metrics form).
				fmt.Fprintf(out, "scenario %s — %s\n\n", sc.Name, sc.Doc)
				return runObserved(out, ob, sc.Spec, *seed, "", *verbose)
			}
			res, err := farm.RunScenario(*scenario, *seed)
			if err != nil {
				return err
			}
			printScenario(out, res, *verbose)
			return nil
		}
		base = sc.Spec
		if sc.Sweep != nil {
			// The scenario's own threshold search joins the grid: its
			// axis comes first and its SLO rule applies unless -select
			// overrides it.
			grid := sc.Sweep.Grid(sc.Name, sc.Spec)
			axes = append(grid.Axes, axes...)
			if *selectS == "" {
				selector = grid.Select
			}
		}
	case *tracePath == "":
		return fmt.Errorf("one of -scenario, -trace, -spec, -run-shard, or -merge is required (use -scenarios to list)")
	default:
		f, err := os.Open(*tracePath)
		if err != nil {
			return err
		}
		tr, err := trace.Read(f)
		f.Close()
		if err != nil {
			return err
		}
		alloc, err := allocSpec(*assignIn, *algo, *capL, *farmN)
		if err != nil {
			return err
		}
		spin, err := spinSpec(*threshold)
		if err != nil {
			return err
		}
		base = farm.Spec{
			Name:       "disksim",
			Workload:   farm.TraceWorkload(tr),
			Alloc:      alloc,
			Spin:       spin,
			FarmSize:   *farmN,
			CacheBytes: int64(*cacheB),
		}
	}

	// Fold the -control/-epoch/-budget overrides into the base spec:
	// "static" strips a scenario's controller, anything else installs
	// or rewrites one (the scenario's own epoch and budget survive
	// unless overridden).
	if controlFlags {
		if *controlName == "static" || *controlName == "none" {
			if wasSet("epoch") || wasSet("budget") {
				return fmt.Errorf("-epoch/-budget have no effect with -control %s", *controlName)
			}
			base.Control = nil
		} else {
			cs := farm.ControlSpec{}
			if base.Control != nil {
				cs = *base.Control
			}
			if *controlName != "" {
				cs.Controller = *controlName
			}
			if wasSet("epoch") {
				cs.Epoch = *epochF
			}
			if wasSet("budget") {
				cs.BudgetP95 = *budgetF
			}
			if cs.Controller == "" {
				return fmt.Errorf("-epoch/-budget need -control NAME (or a controlled scenario); controllers: tail-budget, rate-respec")
			}
			if _, err := control.ParseKind(cs.Controller); err != nil {
				return err
			}
			if cs.Epoch == 0 {
				cs.Epoch = control.DefaultEpoch
			}
			base.Control = &cs
			// A threshold-family spin policy becomes the tunable kind the
			// tail-budget controller actuates (a fixed threshold survives
			// as the initial value). Other kinds — adaptive, randomized,
			// never, immediate — are left alone; the controller can still
			// observe and re-spec, it just has no threshold knob.
			switch base.Spin.Kind {
			case farm.SpinBreakEven:
				base.Spin = farm.SpinSpec{Kind: farm.SpinTailAware}
			case farm.SpinFixed:
				base.Spin = farm.SpinSpec{Kind: farm.SpinTailAware, Threshold: base.Spin.Threshold}
			}
		}
	}

	// Fold -cycle-cap into the base: under a tail-budget controller it
	// becomes the controller's cycle budget (the knob stays tunable);
	// open-loop it rewrites a threshold-family spin policy to the
	// cycle-capped kind, keeping a fixed threshold as the initial value.
	if wasSet("cycle-cap") {
		switch {
		case base.Control != nil:
			// Copy-on-write: a controlled scenario's ControlSpec is shared
			// with the registry.
			cs := *base.Control
			cs.CycleBudget = *cycleCap
			base.Control = &cs
		case base.Spin.Kind == farm.SpinBreakEven:
			base.Spin = farm.CycleCapSpin(0, *cycleCap)
		case base.Spin.Kind == farm.SpinFixed:
			base.Spin = farm.CycleCapSpin(base.Spin.Threshold, *cycleCap)
		case base.Spin.Kind == farm.SpinCycleBudget:
			base.Spin.CycleBudget = *cycleCap
		default:
			return fmt.Errorf("-cycle-cap needs a threshold-family spin policy, not %v", base.Spin.Kind)
		}
	}

	// Fold -afr-budget into the selector: an SLO rule — from -select,
	// the scenario's sweep, or a grid scenario — upgrades to the
	// SLO-and-AFR kind at the given budget.
	selOverride := *selectS != ""
	if wasSet("afr-budget") {
		target := selector
		if !selOverride && gridBase != nil {
			target = gridBase.Select
		}
		switch target.Kind {
		case farm.SelectMinEnergySLO, farm.SelectMinEnergySLOAFR:
			target.Kind = farm.SelectMinEnergySLOAFR
			target.MaxAFR = *afrBudget
		default:
			return fmt.Errorf("-afr-budget needs an SLO selector: add -select slo=SECONDS or use a sweep scenario")
		}
		selector = target
		selOverride = true
	}

	// mkSweep assembles the grid every distributed mode operates on: a
	// grid scenario's own sweep (extended by any -sweep axes), or the
	// ad-hoc base × axes.
	hasGrid := len(axes) > 0 || gridBase != nil
	mkSweep := func() farm.Sweep {
		if gridBase != nil {
			s := *gridBase
			s.Axes = append(append([]farm.Axis{}, s.Axes...), axes...)
			if selOverride {
				s.Select = selector
			}
			return s
		}
		return farm.Sweep{Name: base.Name, Base: base, Axes: axes, Select: selector}
	}

	if selector.Kind != farm.SelectNone && !hasGrid {
		return fmt.Errorf("-select needs a grid: add at least one -sweep axis")
	}
	if obsFiles && hasGrid {
		return fmt.Errorf("-trace-out/-telemetry-out record a single run: drop the -sweep axes (or run one grid point as a -spec)")
	}
	if *shards > 0 {
		if !hasGrid {
			return fmt.Errorf("-shards needs a grid: add -sweep axes or use a sweep scenario/spec")
		}
		return writeShards(mkSweep(), *seed, *shards, *shardOut, out)
	}
	if *serveAddr != "" {
		if !hasGrid {
			return fmt.Errorf("-serve needs a grid: add -sweep axes or use a sweep scenario/spec")
		}
		return serveSweep(out, mkSweep(), *seed, *serveAddr, *journalPath, *leaseD, *batchN, *token, *obsOut, *verbose)
	}

	if *specOut != "" {
		doc := farm.File{}
		if hasGrid {
			s := mkSweep()
			doc.Sweep = &s
		} else {
			doc.Spec = &base
		}
		f, err := os.Create(*specOut)
		if err != nil {
			return err
		}
		err = farm.EncodeFile(f, doc)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "wrote %s\n", *specOut)
		return nil
	}

	if hasGrid {
		return runSweep(out, mkSweep(), *seed, *workers, *verbose)
	}
	if base.Control != nil {
		if err := ob.beginRun(base, *seed); err != nil {
			return err
		}
		res, err := control.RunSpec(base, *seed)
		if err != nil {
			return ob.runErr(err)
		}
		printControlled(out, res, base.CacheBytes > 0, *verbose)
		return nil
	}
	// The threshold header is the ad-hoc flag's echo; scenario-based
	// bases carry their policy in the spec.
	thr := ""
	if *tracePath != "" {
		thr = *threshold
	}
	if obsFiles {
		return runObserved(out, ob, base, *seed, thr, *verbose)
	}
	m, err := farm.Run(base, *seed)
	if err != nil {
		return err
	}
	printMetrics(out, m, thr, base.CacheBytes > 0, *verbose)
	return nil
}

// shardFileName names shard i's manifest; its result file replaces
// .json with .result.json (see resultPathFor).
func shardFileName(i int) string { return fmt.Sprintf("shard-%03d.json", i) }

// resultPathFor derives the default result path of a manifest.
func resultPathFor(manifestPath string) string {
	return strings.TrimSuffix(manifestPath, ".json") + ".result.json"
}

// writeShards partitions the sweep and writes one manifest per shard
// under dir.
func writeShards(sweep farm.Sweep, seed int64, n int, dir string, out io.Writer) error {
	if dir == "" {
		return fmt.Errorf("-shards needs -shard-out DIR")
	}
	manifests, err := farm.Shard(sweep, seed, n)
	if err != nil {
		return err
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for _, m := range manifests {
		path := filepath.Join(dir, shardFileName(m.Index))
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		err = farm.EncodeShard(f, m)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "wrote %s (%d points)\n", path, len(m.Points))
	}
	fmt.Fprintf(out, "%d shards over %d points; run each with -run-shard, then -merge %s\n",
		n, sweep.NumPoints(), dir)
	return nil
}

// interruptContext is the graceful-shutdown seam of the long-running
// modes (-serve, -work, -run-shard): SIGINT/SIGTERM cancel the context,
// so in-flight points finish, journals and partial results land on
// disk, and the exit is non-zero instead of a mid-write kill.
func interruptContext() (context.Context, context.CancelFunc) {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	// Deregister on the first signal: the graceful path is running, and
	// the next Ctrl-C must terminate by default delivery instead of
	// being swallowed while in-flight points wind down.
	go func() {
		<-ctx.Done()
		stop()
	}()
	return ctx, stop
}

// startProfiles wires -cpuprofile/-memprofile: it starts the CPU
// profile immediately and returns an idempotent stop that flushes and
// closes both files. run() defers stop on every return path — the
// graceful-SIGINT modes (-serve/-work/-run-shard) reach it because
// interruptContext converts the signal into a normal return. For the
// other modes, where SIGINT would otherwise kill the process with the
// profile unflushed, startProfiles installs its own handler that
// flushes and exits with the conventional interrupt status.
func startProfiles(cpu, mem string, graceful bool) (stop func(), err error) {
	if cpu == "" && mem == "" {
		return func() {}, nil
	}
	var cpuF *os.File
	if cpu != "" {
		cpuF, err = os.Create(cpu)
		if err != nil {
			return nil, fmt.Errorf("-cpuprofile: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuF); err != nil {
			cpuF.Close()
			return nil, fmt.Errorf("-cpuprofile: %w", err)
		}
	}
	var once sync.Once
	stop = func() {
		once.Do(func() {
			if cpuF != nil {
				pprof.StopCPUProfile()
				if err := cpuF.Close(); err != nil {
					fmt.Fprintln(os.Stderr, "disksim: -cpuprofile:", err)
				}
			}
			if mem != "" {
				f, err := os.Create(mem)
				if err != nil {
					fmt.Fprintln(os.Stderr, "disksim: -memprofile:", err)
					return
				}
				runtime.GC() // get up-to-date heap statistics
				if err := pprof.WriteHeapProfile(f); err != nil {
					fmt.Fprintln(os.Stderr, "disksim: -memprofile:", err)
				}
				if err := f.Close(); err != nil {
					fmt.Fprintln(os.Stderr, "disksim: -memprofile:", err)
				}
			}
		})
	}
	if !graceful {
		sigc := make(chan os.Signal, 1)
		signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
		go func() {
			<-sigc
			stop()
			os.Exit(130)
		}()
	}
	return stop, nil
}

// openSpanSink creates the -obs-out span log file and its recorder.
// A nil-returning empty path is the disabled state (the recorder's
// methods are nil-safe). The returned close aborts any still-open
// spans, flushes, and closes the file; callers defer it on every exit
// path so a SIGINT return still leaves a valid, complete JSONL log —
// the same guarantee the single-run -trace-out/-telemetry-out sinks
// give.
func openSpanSink(path string) (*obs.SpanRecorder, error) {
	if path == "" {
		return nil, nil
	}
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("-obs-out: %w", err)
	}
	// The recorder owns the file: its Close closes it.
	return obs.NewSpanRecorder(f), nil
}

// mergeTraceDir folds every *.spans.jsonl under dir into one
// Chrome-trace JSON — one track per recorded process — written to
// tracePath, or to out when no -trace-out was given.
func mergeTraceDir(dir, tracePath string, out io.Writer) error {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return err
	}
	var logs []obs.SpanLog
	var spans int
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".spans.jsonl") {
			continue
		}
		f, err := os.Open(filepath.Join(dir, e.Name()))
		if err != nil {
			return err
		}
		log, err := obs.ReadSpans(f)
		f.Close()
		if err != nil {
			return fmt.Errorf("%s: %w", e.Name(), err)
		}
		logs = append(logs, *log)
		spans += len(log.Spans)
	}
	if len(logs) == 0 {
		return fmt.Errorf("no *.spans.jsonl files in %s (record them with -obs-out)", dir)
	}
	w := out
	var f *os.File
	if tracePath != "" {
		f, err = os.Create(tracePath)
		if err != nil {
			return fmt.Errorf("-trace-out: %w", err)
		}
		w = f
	}
	err = obs.WriteSpanTrace(w, logs)
	if f != nil {
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err == nil {
			fmt.Fprintf(out, "wrote %s (%d tracks, %d spans)\n", tracePath, len(logs), spans)
		}
	}
	return err
}

// serveSweep runs the grid as a work-stealing coordinator and prints
// the drained report — byte-identical to runSweep of the same grid.
// Progress goes to stderr so the report stays diffable.
func serveSweep(out io.Writer, sweep farm.Sweep, seed int64, addr, journal string, lease time.Duration, batch int, token, obsOut string, verbose bool) (retErr error) {
	ctx, stop := interruptContext()
	defer stop()
	rec, err := openSpanSink(obsOut)
	if err != nil {
		return err
	}
	defer func() {
		if cerr := rec.Close(); cerr != nil && retErr == nil {
			retErr = fmt.Errorf("-obs-out: %w", cerr)
		}
	}()
	res, err := coord.Serve(ctx, sweep, seed, addr, coord.Config{
		LeaseTimeout: lease,
		BatchSize:    batch,
		JournalPath:  journal,
		Token:        token,
		Spans:        rec,
		OnListen: func(a net.Addr) {
			fmt.Fprintf(os.Stderr, "disksim: coordinator serving %d points on %s\n", sweep.NumPoints(), a)
		},
	})
	if err != nil {
		if errors.Is(err, context.Canceled) {
			if journal != "" {
				return fmt.Errorf("interrupted — journal %s holds every completed point; restart -serve with the same flags to resume", journal)
			}
			return fmt.Errorf("interrupted — completed points are lost (set -journal to make -serve resumable)")
		}
		return err
	}
	printSweep(out, res, verbose)
	// The report is out; the journal — the drained grid's only durable
	// copy until now — has served its purpose. A cleanup failure must
	// not fail the run; the stale journal is harmless (a restart on it
	// drains instantly, its points all being done).
	if journal != "" {
		if rerr := os.Remove(journal); rerr != nil && !errors.Is(rerr, fs.ErrNotExist) {
			fmt.Fprintf(os.Stderr, "disksim: warning: removing journal %s: %v (the report above is complete)\n", journal, rerr)
		}
	}
	return nil
}

// workSweep joins a coordinator and pulls points until the grid drains.
// -obs-out records this worker's span log (flushed on SIGINT like
// every sink) and -metrics-addr serves its per-slot telemetry live.
func workSweep(url, name string, workers int, token, obsOut, metricsAddr string, out io.Writer) (retErr error) {
	ctx, stop := interruptContext()
	defer stop()
	rec, err := openSpanSink(obsOut)
	if err != nil {
		return err
	}
	defer func() {
		if cerr := rec.Close(); cerr != nil && retErr == nil {
			retErr = fmt.Errorf("-obs-out: %w", cerr)
		}
	}()
	var reg *obs.Registry
	if metricsAddr != "" {
		reg = obs.NewRegistry()
		ln, err := net.Listen("tcp", metricsAddr)
		if err != nil {
			return fmt.Errorf("-metrics-addr: %w", err)
		}
		srv := &http.Server{Handler: obs.NewServeMux(reg)}
		go srv.Serve(ln)
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "disksim: worker metrics on http://%s/metrics\n", ln.Addr())
	}
	stats, err := coord.Work(ctx, url, coord.WorkerConfig{Name: name, Parallel: workers, Token: token, Spans: rec, Metrics: reg})
	if err != nil {
		if errors.Is(err, context.Canceled) {
			return fmt.Errorf("worker %s interrupted after %d points — its leases will expire and re-queue at the coordinator", stats.Worker, stats.Points)
		}
		return err
	}
	fmt.Fprintf(out, "worker %s: %d points computed\n", stats.Worker, stats.Points)
	return nil
}

// runShardFile executes one manifest to its result file. An existing
// result file is the resume input: points it already holds are reused,
// only the rest run. While the shard runs, every completed point
// journals to <result>.partial — synced as it lands — so a crash or an
// interrupt loses at most one point; the journal is deleted once the
// final result file is durably in place.
func runShardFile(manifestPath, resultPath string, workers int, obsOut string, out io.Writer) (retErr error) {
	ctx, stop := interruptContext()
	defer stop()
	if resultPath == "" {
		resultPath = resultPathFor(manifestPath)
	}
	f, err := os.Open(manifestPath)
	if err != nil {
		return err
	}
	m, err := farm.DecodeShard(f)
	f.Close()
	if err != nil {
		return err
	}
	rec, err := openSpanSink(obsOut)
	if err != nil {
		return err
	}
	defer func() {
		if cerr := rec.Close(); cerr != nil && retErr == nil {
			retErr = fmt.Errorf("-obs-out: %w", cerr)
		}
	}()
	if err := rec.Start(obs.SpanHeader{
		Track: fmt.Sprintf("shard-%d", m.Index), Role: "shard",
		SweepHash: farm.Fingerprint(m.Sweep, m.Seed), Seed: m.Seed,
		Points: m.Sweep.NumPoints(),
	}); err != nil {
		return err
	}
	var prior *farm.ShardResult
	if rf, err := os.Open(resultPath); err == nil {
		prior, err = farm.DecodeShardResult(rf)
		rf.Close()
		if err != nil {
			return fmt.Errorf("existing result %s: %w (delete it to start over)", resultPath, err)
		}
	} else if !os.IsNotExist(err) {
		return err
	}
	partialPath := resultPath + ".partial"
	journal, journaled, err := farm.OpenPointJournal(partialPath, m.Sweep, m.Seed)
	if err != nil {
		return err
	}
	defer journal.Close()
	prior = priorWithJournal(m, prior, journaled)
	reused := m.Reused(prior)
	// The resume decision is worth a record on both planes: a
	// structured event in the span log, and one human line on stderr
	// (the report on stdout stays diffable).
	rec.Event(-1, 0, "resume", obs.SpanOK,
		map[string]any{"reused": reused, "rerun": len(m.Points) - reused})
	if reused > 0 {
		fmt.Fprintf(os.Stderr, "disksim: shard %d resume: %d of %d points reused, %d to run\n",
			m.Index, reused, len(m.Points), len(m.Points)-reused)
	}
	// Every newly computed point lands in the journal and, when a span
	// log is attached, as an instant point event at its completion time.
	sink := journal.Append
	if obsOut != "" {
		sink = func(pr farm.ShardPointResult) error {
			rec.Event(pr.Index, 1, "point", obs.SpanOK, map[string]any{"label": pr.Label})
			return journal.Append(pr)
		}
	}
	res, err := farm.RunShardStream(ctx, *m, prior, workers, sink)
	if err != nil {
		if errors.Is(err, context.Canceled) {
			return fmt.Errorf("interrupted — %s holds every completed point; re-run -run-shard to resume", partialPath)
		}
		return err
	}
	// Write-then-rename so a failure mid-write cannot destroy the prior
	// result the resume path depends on.
	tmp := resultPath + ".tmp"
	rf, err := os.Create(tmp)
	if err != nil {
		return err
	}
	err = farm.EncodeShardResult(rf, *res)
	// The journal is deleted below on the strength of this file, so its
	// data must be on disk — not just in the page cache — first.
	if serr := rf.Sync(); err == nil {
		err = serr
	}
	if cerr := rf.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, resultPath); err != nil {
		return err
	}
	// The journal may only go once the rename is durable — data pages
	// were synced above, but the directory entry needs its own fsync, or
	// a power loss could persist the journal unlink while losing the
	// rename, and with it every completed point. A cleanup failure must
	// not report the shard as failed either way — a stale journal is
	// harmless, its points all being in the result file already.
	journal.Close()
	if err := farm.SyncParentDir(resultPath); err != nil {
		fmt.Fprintf(os.Stderr, "disksim: warning: syncing directory of %s: %v — keeping journal %s\n", resultPath, err, partialPath)
	} else if err := journal.Remove(); err != nil && !errors.Is(err, fs.ErrNotExist) {
		fmt.Fprintf(os.Stderr, "disksim: warning: removing journal %s: %v (the result %s is complete)\n", partialPath, err, resultPath)
	}
	fmt.Fprintf(out, "shard %d/%d: %d points (%d reused) -> %s\n",
		m.Index, m.Count, len(res.Points), reused, resultPath)
	return nil
}

// priorWithJournal folds the points recovered from a crash journal into
// the resume input. A result-file prior keeps its identity fields (so
// RunShard still cross-checks them against the manifest) and wins index
// ties; with no result file, the journaled points stand alone.
func priorWithJournal(m *farm.ShardManifest, prior *farm.ShardResult, journaled []farm.ShardPointResult) *farm.ShardResult {
	if len(journaled) == 0 {
		return prior
	}
	merged := farm.ShardResult{Index: m.Index, Count: m.Count, Seed: m.Seed, Sweep: m.Sweep}
	if prior != nil {
		merged = *prior
		merged.Points = append([]farm.ShardPointResult(nil), prior.Points...)
	}
	have := make(map[int]bool, len(merged.Points))
	for _, p := range merged.Points {
		have[p.Index] = true
	}
	for _, p := range journaled {
		if !have[p.Index] {
			merged.Points = append(merged.Points, p)
			have[p.Index] = true
		}
	}
	sort.Slice(merged.Points, func(i, j int) bool { return merged.Points[i].Index < merged.Points[j].Index })
	return &merged
}

// mergeShards recombines every *.result.json under dir and reports the
// sweep exactly as a single-process run would have. A -select override
// re-picks the operating point post-merge.
func mergeShards(dir string, sel farm.Selector, selSet, verbose bool, out io.Writer) error {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return err
	}
	var results []farm.ShardResult
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".result.json") {
			continue
		}
		f, err := os.Open(filepath.Join(dir, e.Name()))
		if err != nil {
			return err
		}
		r, err := farm.DecodeShardResult(f)
		f.Close()
		if err != nil {
			return fmt.Errorf("%s: %w", e.Name(), err)
		}
		results = append(results, *r)
	}
	if len(results) == 0 {
		return fmt.Errorf("no *.result.json files in %s (run shards with -run-shard first)", dir)
	}
	res, err := farm.Merge(results)
	if err != nil {
		return err
	}
	if selSet {
		if err := res.Reselect(sel); err != nil {
			return err
		}
	}
	printSweep(out, res, verbose)
	return nil
}

// runSweep executes and prints an ad-hoc grid.
func runSweep(out io.Writer, sweep farm.Sweep, seed int64, workers int, verbose bool) error {
	res, err := farm.RunSweep(sweep, seed, workers)
	if err != nil {
		return err
	}
	printSweep(out, res, verbose)
	return nil
}

func listScenarios(out io.Writer) {
	for _, sc := range farm.Scenarios() {
		kind := "run"
		switch {
		case sc.Grid != nil:
			kind = fmt.Sprintf("grid of %d points", sc.Grid.NumPoints())
		case sc.Sweep != nil:
			kind = fmt.Sprintf("sweep over %d thresholds", len(sc.Sweep.Thresholds))
		case sc.Spec.Control != nil:
			kind = "controlled"
		}
		fmt.Fprintf(out, "%-20s %-18s %s\n", sc.Name, kind, sc.Doc)
	}
}

func printScenario(out io.Writer, res *farm.Result, verbose bool) {
	fmt.Fprintf(out, "scenario %s — %s\n", res.Scenario.Name, res.Scenario.Doc)
	if res.Scenario.Sweep == nil {
		fmt.Fprintln(out)
		printMetrics(out, res.Runs[0], "", res.Scenario.Spec.CacheBytes > 0, verbose)
		return
	}
	fmt.Fprintf(out, "SLO: p95 response <= %g s\n\n", res.Scenario.Sweep.MaxP95)
	fmt.Fprintf(out, "%-18s %10s %10s %10s %10s %8s\n", "point", "power(W)", "saving", "p95(s)", "mean(s)", "meets?")
	for i, m := range res.Runs {
		mark := "no"
		if m.RespP95 <= res.Scenario.Sweep.MaxP95 {
			mark = "yes"
		}
		if i == res.Best {
			mark = "chosen"
		}
		fmt.Fprintf(out, "%-18s %10.1f %9.1f%% %10.2f %10.2f %8s\n",
			res.Labels[i], m.AvgPower, m.PowerSavingRatio*100, m.RespP95, m.RespMean, mark)
	}
	if res.Best < 0 {
		fmt.Fprintln(out, "\nno threshold meets the SLO — add disks or relax the target")
	} else {
		best := res.Runs[res.Best]
		fmt.Fprintf(out, "\noperating point: %s (%.1f W, p95 %.2f s)\n", res.Labels[res.Best], best.AvgPower, best.RespP95)
	}
}

// printSweep renders a grid result: one row per point plus the
// selector's verdict.
func printSweep(out io.Writer, res *farm.SweepResult, verbose bool) {
	name := res.Sweep.Name
	if name == "" {
		name = "sweep"
	}
	fmt.Fprintf(out, "sweep %s — %d points\n", name, len(res.Points))
	if res.Sweep.PlanOnly {
		printPlanSweep(out, res)
		return
	}
	sel := res.Sweep.Select
	switch sel.Kind {
	case farm.SelectMinEnergySLO:
		fmt.Fprintf(out, "selector: min energy with p95 response <= %g s\n", sel.MaxP95)
	case farm.SelectMinEnergySLOAFR:
		fmt.Fprintf(out, "selector: min energy with p95 response <= %g s and AFR <= %g%%\n", sel.MaxP95, sel.MaxAFR*100)
	case farm.SelectKnee:
		fmt.Fprintln(out, "selector: knee of the energy/response curve")
	case farm.SelectPareto:
		fmt.Fprintln(out, "selector: pareto front of (energy, mean response)")
	}
	onFront := make(map[int]bool, len(res.Front))
	for _, i := range res.Front {
		onFront[i] = true
	}
	width := 24
	for i := range res.Points {
		if len(res.Points[i].Label) > width {
			width = len(res.Points[i].Label)
		}
	}
	fmt.Fprintf(out, "\n%-*s %10s %10s %10s %10s %8s\n", width, "point", "power(W)", "saving", "p95(s)", "mean(s)", "")
	for i := range res.Points {
		m := res.Points[i].Metrics
		mark := ""
		switch {
		case i == res.Best:
			mark = "chosen"
		case onFront[i]:
			mark = "front"
		case sel.Kind == farm.SelectMinEnergySLO && m.RespP95 <= sel.MaxP95:
			mark = "ok"
		case sel.Kind == farm.SelectMinEnergySLOAFR && m.RespP95 <= sel.MaxP95 && m.AFR <= sel.MaxAFR:
			mark = "ok"
		}
		fmt.Fprintf(out, "%-*s %10.1f %9.1f%% %10.2f %10.2f %8s\n",
			width, res.Points[i].Label, m.AvgPower, m.PowerSavingRatio*100, m.RespP95, m.RespMean, mark)
	}
	switch {
	case res.Best >= 0:
		best := res.Points[res.Best]
		fmt.Fprintf(out, "\noperating point: %s (%.1f W, p95 %.2f s)\n", best.Label, best.Metrics.AvgPower, best.Metrics.RespP95)
	case sel.Kind == farm.SelectMinEnergySLO:
		fmt.Fprintln(out, "\nno point meets the SLO — add disks or relax the target")
	case sel.Kind == farm.SelectMinEnergySLOAFR:
		fmt.Fprintln(out, "\nno point meets both the SLO and the AFR budget — relax a target or cap cycles instead")
	case sel.Kind == farm.SelectPareto:
		fmt.Fprintf(out, "\npareto front: %d of %d points\n", len(res.Front), len(res.Points))
	}
	if verbose {
		for i := range res.Points {
			fmt.Fprintf(out, "\n== %s ==\n", res.Points[i].Label)
			printMetrics(out, res.Points[i].Metrics, "", res.Points[i].Spec.CacheBytes > 0, true)
		}
	}
}

// printPlanSweep renders a plan-only grid: allocation quality per
// point, no simulation metrics and no operating point.
func printPlanSweep(out io.Writer, res *farm.SweepResult) {
	fmt.Fprintln(out, "plan only: allocation stage, no simulation")
	width := 24
	for i := range res.Points {
		if len(res.Points[i].Label) > width {
			width = len(res.Points[i].Label)
		}
	}
	fmt.Fprintf(out, "\n%-*s %8s %10s %8s %10s\n", width, "point", "disks", "lower-bnd", "rho", "thm1-bnd")
	for i := range res.Points {
		a := res.Points[i].Alloc
		fmt.Fprintf(out, "%-*s %8d %10d %8.3f %10.2f\n",
			width, res.Points[i].Label, a.DisksUsed, a.LowerBound, a.Rho, a.Bound)
	}
}

// printControlled renders a closed-loop run: the unified metrics, a
// per-window telemetry table, and (verbose) the controller's action
// log. Everything printed is a pure function of (spec, seed), so two
// runs diff clean — the CI control-smoke job depends on that.
func printControlled(out io.Writer, res *control.Result, withCache, verbose bool) {
	m := res.Metrics
	fmt.Fprintf(out, "controller        %s (%d windows, %d actions)\n", res.Controller, len(res.Windows), len(res.Actions))
	printMetrics(out, m, "", withCache, verbose)
	if m.Sim.MigratedFiles > 0 {
		fmt.Fprintf(out, "migration         %d files, %.3e bytes, %.3e J\n",
			m.Sim.MigratedFiles, float64(m.Sim.MigratedBytes), m.Sim.MigrationEnergy)
	}
	fmt.Fprintf(out, "\n%-6s %-8s %10s %8s %8s %10s %10s %8s\n",
		"window", "span(s)", "threshold", "arrive", "done", "p95(s)", "energy(J)", "spinups")
	for _, w := range res.Windows {
		// The homogeneous threshold column reads group 0; heterogeneous
		// farms list every group's knob.
		thr := ""
		for g := range w.Groups {
			if g > 0 {
				thr += "/"
			}
			thr += fmt.Sprintf("%.4g", w.Groups[g].Threshold)
		}
		fmt.Fprintf(out, "%-6d %-8.0f %10s %8d %8d %10.2f %10.3e %8d\n",
			w.Index, w.End-w.Start, thr, w.Total.Arrivals, w.Total.Completed,
			w.Total.RespP95, w.Total.Energy, w.Total.SpinUps)
	}
	if verbose {
		fmt.Fprintln(out, "\nactions:")
		for _, a := range res.Actions {
			status := "applied"
			if !a.Applied {
				status = "skipped"
			}
			fmt.Fprintf(out, "  w%02d %-14s %-7s %s\n", a.Window, a.Action.Kind, status, a.Note)
		}
	}
}

func printMetrics(out io.Writer, m *farm.Metrics, threshold string, withCache, verbose bool) {
	if threshold != "" {
		fmt.Fprintf(out, "farm              %d disks, threshold %s\n", m.FarmSize, threshold)
	} else {
		fmt.Fprintf(out, "farm              %d disks (%d used by the allocation)\n", m.FarmSize, m.DisksUsed)
	}
	fmt.Fprintf(out, "energy            %.3e J over %.0f s (avg %.1f W)\n", m.Energy, m.Duration, m.AvgPower)
	fmt.Fprintf(out, "no-saving energy  %.3e J\n", m.NoSavingEnergy)
	fmt.Fprintf(out, "power saving      %.1f%%\n", m.PowerSavingRatio*100)
	fmt.Fprintf(out, "response time     mean %.2f s  median %.2f s  p95 %.2f s  p99 %.2f s  max %.2f s\n",
		m.RespMean, m.RespMedian, m.RespP95, m.RespP99, m.RespMax)
	fmt.Fprintf(out, "requests          %d completed, %d unfinished\n", m.Completed, m.Unfinished)
	fmt.Fprintf(out, "spin transitions  %d up, %d down\n", m.SpinUps, m.SpinDowns)
	fmt.Fprintf(out, "drive life        %.1f cycles/disk-day, modeled AFR %.2f%%\n", m.CyclesPerDay, m.AFR*100)
	if m.Failures > 0 || m.Rebuilds > 0 {
		fmt.Fprintf(out, "failures          %d (%d data-loss), %d rebuilds, %.0f s degraded\n",
			m.Failures, m.DataLossEvents, m.Rebuilds, m.RebuildTime)
	}
	fmt.Fprintf(out, "avg standby disks %.1f of %d\n", m.AvgStandbyDisks, m.FarmSize)
	fmt.Fprintf(out, "peak disk queue   %d\n", m.Sim.PeakQueue)
	if withCache {
		fmt.Fprintf(out, "cache             %d hits / %d misses (%.1f%%)\n",
			m.Sim.CacheHits, m.Sim.CacheMisses, m.CacheHitRatio*100)
	}
	if verbose {
		fmt.Fprintln(out, "\ndisk  served  bytesGB  energyKJ  spinups  util%  idle%  standby%")
		for i, b := range m.Sim.PerDisk {
			total := m.Duration
			fmt.Fprintf(out, "%4d  %6d  %7.1f  %8.1f  %7d  %5.1f  %5.1f  %8.1f\n",
				i, b.Served, float64(b.BytesRead)/1e9, b.Energy/1e3, b.SpinUps,
				100*m.Utilization[i],
				100*b.Durations[disk.Idle]/total,
				100*b.Durations[disk.Standby]/total)
		}
	}
}

func allocSpec(assignPath, algo string, capL float64, farmN int) (farm.AllocSpec, error) {
	if assignPath != "" {
		assign, err := readAssign(assignPath)
		if err != nil {
			return farm.AllocSpec{}, err
		}
		return farm.Explicit(assign), nil
	}
	switch algo {
	case "pack":
		return farm.AllocSpec{Kind: farm.AllocPack, CapL: capL}, nil
	case "pack4":
		return farm.AllocSpec{Kind: farm.AllocPackV, CapL: capL, V: 4}, nil
	case "random":
		return farm.AllocSpec{Kind: farm.AllocRandom, CapL: capL, Disks: farmN}, nil
	case "ffd":
		return farm.AllocSpec{Kind: farm.AllocFirstFitDecreasing, CapL: capL}, nil
	case "firstfit":
		return farm.AllocSpec{Kind: farm.AllocFirstFit, CapL: capL}, nil
	case "bestfit":
		return farm.AllocSpec{Kind: farm.AllocBestFit, CapL: capL}, nil
	case "chp":
		return farm.AllocSpec{Kind: farm.AllocChangHwangPark, CapL: capL}, nil
	default:
		return farm.AllocSpec{}, fmt.Errorf("unknown algorithm %q", algo)
	}
}

func spinSpec(threshold string) (farm.SpinSpec, error) {
	switch threshold {
	case "breakeven":
		return farm.SpinSpec{Kind: farm.SpinBreakEven}, nil
	case "never":
		return farm.SpinSpec{Kind: farm.SpinNever}, nil
	case "immediate":
		return farm.SpinSpec{Kind: farm.SpinImmediate}, nil
	case "adaptive":
		return farm.SpinSpec{Kind: farm.SpinAdaptive}, nil
	case "randomized":
		return farm.SpinSpec{Kind: farm.SpinRandomized}, nil
	default:
		th, err := strconv.ParseFloat(threshold, 64)
		if err != nil {
			return farm.SpinSpec{}, fmt.Errorf("bad -threshold: %w", err)
		}
		return farm.FixedSpin(th), nil
	}
}

func readAssign(path string) ([]int, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var out []int
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := sc.Text()
		if line == "" {
			continue
		}
		d, err := strconv.Atoi(line)
		if err != nil {
			return nil, fmt.Errorf("bad assignment line %q: %w", line, err)
		}
		out = append(out, d)
	}
	return out, sc.Err()
}
