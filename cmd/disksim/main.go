// Command disksim runs disk-farm simulations through the scenario
// engine (internal/farm): either a registered scenario by name, or an
// ad-hoc run assembled from a trace file plus allocation, spin-down,
// and cache flags.
//
// Usage:
//
//	disksim -scenarios                       # list the catalogue
//	disksim -scenario hetero                 # run a registered scenario
//	disksim -scenario slo-sweep -seed 7      # sweeps pick an operating point
//	disksim -trace nersc.trace -algo pack -L 0.7 -threshold 1800
//	disksim -trace synth.trace -algo random -disks 100 -threshold breakeven
//	disksim -trace nersc.trace -assign out.map -disks 96 -cache 16e9
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strconv"

	"diskpack/internal/disk"
	"diskpack/internal/farm"
	"diskpack/internal/trace"
)

func main() {
	var (
		scenario  = flag.String("scenario", "", "run a registered scenario by name (see -scenarios)")
		list      = flag.Bool("scenarios", false, "list registered scenarios and exit")
		tracePath = flag.String("trace", "", "input trace file (ad-hoc mode)")
		assignIn  = flag.String("assign", "", "file→disk map (one disk per line); overrides -algo")
		algo      = flag.String("algo", "pack", "allocator when -assign is absent: pack, pack4, random, ffd, firstfit, bestfit, chp")
		capL      = flag.Float64("L", 0.7, "load constraint for packing")
		farmN     = flag.Int("disks", 0, "farm size (0 = as many as the allocation uses)")
		threshold = flag.String("threshold", "breakeven", "idleness threshold in seconds, 'breakeven', 'never', 'immediate', 'adaptive', or 'randomized'")
		cacheB    = flag.Float64("cache", 0, "LRU cache bytes (0 = none; paper uses 16e9)")
		seed      = flag.Int64("seed", 1, "seed for random placement and randomized policies")
		verbose   = flag.Bool("v", false, "per-disk breakdown")
	)
	flag.Parse()

	if *list {
		listScenarios()
		return
	}
	if *scenario != "" {
		res, err := farm.RunScenario(*scenario, *seed)
		if err != nil {
			fatal(err)
		}
		printScenario(res, *verbose)
		return
	}
	if *tracePath == "" {
		fatal(fmt.Errorf("either -scenario or -trace is required (use -scenarios to list)"))
	}

	f, err := os.Open(*tracePath)
	if err != nil {
		fatal(err)
	}
	tr, err := trace.Read(f)
	f.Close()
	if err != nil {
		fatal(err)
	}

	alloc, err := allocSpec(*assignIn, *algo, *capL, *farmN)
	if err != nil {
		fatal(err)
	}
	spin, err := spinSpec(*threshold)
	if err != nil {
		fatal(err)
	}
	spec := farm.Spec{
		Name:       "disksim",
		Workload:   farm.TraceWorkload(tr),
		Alloc:      alloc,
		Spin:       spin,
		FarmSize:   *farmN,
		CacheBytes: int64(*cacheB),
	}
	m, err := farm.Run(spec, *seed)
	if err != nil {
		fatal(err)
	}
	printMetrics(m, *threshold, *cacheB > 0, *verbose)
}

func listScenarios() {
	for _, sc := range farm.Scenarios() {
		kind := "run"
		if sc.Sweep != nil {
			kind = fmt.Sprintf("sweep over %d thresholds", len(sc.Sweep.Thresholds))
		}
		fmt.Printf("%-18s %-10s %s\n", sc.Name, kind, sc.Doc)
	}
}

func printScenario(res *farm.Result, verbose bool) {
	fmt.Printf("scenario %s — %s\n", res.Scenario.Name, res.Scenario.Doc)
	if res.Scenario.Sweep == nil {
		fmt.Println()
		printMetrics(res.Runs[0], "", res.Scenario.Spec.CacheBytes > 0, verbose)
		return
	}
	fmt.Printf("SLO: p95 response <= %g s\n\n", res.Scenario.Sweep.MaxP95)
	fmt.Printf("%-18s %10s %10s %10s %10s %8s\n", "point", "power(W)", "saving", "p95(s)", "mean(s)", "meets?")
	for i, m := range res.Runs {
		mark := "no"
		if m.RespP95 <= res.Scenario.Sweep.MaxP95 {
			mark = "yes"
		}
		if i == res.Best {
			mark = "chosen"
		}
		fmt.Printf("%-18s %10.1f %9.1f%% %10.2f %10.2f %8s\n",
			res.Labels[i], m.AvgPower, m.PowerSavingRatio*100, m.RespP95, m.RespMean, mark)
	}
	if res.Best < 0 {
		fmt.Println("\nno threshold meets the SLO — add disks or relax the target")
	} else {
		best := res.Runs[res.Best]
		fmt.Printf("\noperating point: %s (%.1f W, p95 %.2f s)\n", res.Labels[res.Best], best.AvgPower, best.RespP95)
	}
}

func printMetrics(m *farm.Metrics, threshold string, withCache, verbose bool) {
	if threshold != "" {
		fmt.Printf("farm              %d disks, threshold %s\n", m.FarmSize, threshold)
	} else {
		fmt.Printf("farm              %d disks (%d used by the allocation)\n", m.FarmSize, m.DisksUsed)
	}
	fmt.Printf("energy            %.3e J over %.0f s (avg %.1f W)\n", m.Energy, m.Duration, m.AvgPower)
	fmt.Printf("no-saving energy  %.3e J\n", m.NoSavingEnergy)
	fmt.Printf("power saving      %.1f%%\n", m.PowerSavingRatio*100)
	fmt.Printf("response time     mean %.2f s  median %.2f s  p95 %.2f s  p99 %.2f s  max %.2f s\n",
		m.RespMean, m.RespMedian, m.RespP95, m.RespP99, m.RespMax)
	fmt.Printf("requests          %d completed, %d unfinished\n", m.Completed, m.Unfinished)
	fmt.Printf("spin transitions  %d up, %d down\n", m.SpinUps, m.SpinDowns)
	fmt.Printf("avg standby disks %.1f of %d\n", m.AvgStandbyDisks, m.FarmSize)
	fmt.Printf("peak disk queue   %d\n", m.Sim.PeakQueue)
	if withCache {
		fmt.Printf("cache             %d hits / %d misses (%.1f%%)\n",
			m.Sim.CacheHits, m.Sim.CacheMisses, m.CacheHitRatio*100)
	}
	if verbose {
		fmt.Println("\ndisk  served  bytesGB  energyKJ  spinups  util%  idle%  standby%")
		for i, b := range m.Sim.PerDisk {
			total := m.Duration
			fmt.Printf("%4d  %6d  %7.1f  %8.1f  %7d  %5.1f  %5.1f  %8.1f\n",
				i, b.Served, float64(b.BytesRead)/1e9, b.Energy/1e3, b.SpinUps,
				100*m.Utilization[i],
				100*b.Durations[disk.Idle]/total,
				100*b.Durations[disk.Standby]/total)
		}
	}
}

func allocSpec(assignPath, algo string, capL float64, farmN int) (farm.AllocSpec, error) {
	if assignPath != "" {
		assign, err := readAssign(assignPath)
		if err != nil {
			return farm.AllocSpec{}, err
		}
		return farm.Explicit(assign), nil
	}
	switch algo {
	case "pack":
		return farm.AllocSpec{Kind: farm.AllocPack, CapL: capL}, nil
	case "pack4":
		return farm.AllocSpec{Kind: farm.AllocPackV, CapL: capL, V: 4}, nil
	case "random":
		return farm.AllocSpec{Kind: farm.AllocRandom, CapL: capL, Disks: farmN}, nil
	case "ffd":
		return farm.AllocSpec{Kind: farm.AllocFirstFitDecreasing, CapL: capL}, nil
	case "firstfit":
		return farm.AllocSpec{Kind: farm.AllocFirstFit, CapL: capL}, nil
	case "bestfit":
		return farm.AllocSpec{Kind: farm.AllocBestFit, CapL: capL}, nil
	case "chp":
		return farm.AllocSpec{Kind: farm.AllocChangHwangPark, CapL: capL}, nil
	default:
		return farm.AllocSpec{}, fmt.Errorf("unknown algorithm %q", algo)
	}
}

func spinSpec(threshold string) (farm.SpinSpec, error) {
	switch threshold {
	case "breakeven":
		return farm.SpinSpec{Kind: farm.SpinBreakEven}, nil
	case "never":
		return farm.SpinSpec{Kind: farm.SpinNever}, nil
	case "immediate":
		return farm.SpinSpec{Kind: farm.SpinImmediate}, nil
	case "adaptive":
		return farm.SpinSpec{Kind: farm.SpinAdaptive}, nil
	case "randomized":
		return farm.SpinSpec{Kind: farm.SpinRandomized}, nil
	default:
		th, err := strconv.ParseFloat(threshold, 64)
		if err != nil {
			return farm.SpinSpec{}, fmt.Errorf("bad -threshold: %w", err)
		}
		return farm.FixedSpin(th), nil
	}
}

func readAssign(path string) ([]int, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var out []int
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := sc.Text()
		if line == "" {
			continue
		}
		d, err := strconv.Atoi(line)
		if err != nil {
			return nil, fmt.Errorf("bad assignment line %q: %w", line, err)
		}
		out = append(out, d)
	}
	return out, sc.Err()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "disksim:", err)
	os.Exit(1)
}
