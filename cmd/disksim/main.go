// Command disksim runs disk-farm simulations through the scenario
// engine (internal/farm): a registered scenario by name, an ad-hoc run
// assembled from a trace file plus allocation, spin-down, and cache
// flags, a JSON scenario file, or a parallel grid sweep over any of
// those bases.
//
// Usage:
//
//	disksim -scenarios                       # list the catalogue
//	disksim -scenario hetero                 # run a registered scenario
//	disksim -scenario slo-sweep -seed 7      # sweeps pick an operating point
//	disksim -trace nersc.trace -algo pack -L 0.7 -threshold 1800
//	disksim -trace synth.trace -algo random -disks 100 -threshold breakeven
//	disksim -trace nersc.trace -assign out.map -disks 96 -cache 16e9
//
// Grid sweeps cross -sweep axes over the base spec (the scenario or the
// ad-hoc flags) and fan the points across -workers goroutines:
//
//	disksim -trace nersc.trace -sweep threshold=60,300,1800 -select slo=25
//	disksim -scenario paper-synth -sweep threshold=30,300 -sweep farm=20,40 -select pareto
//	disksim -trace synth.trace -sweep L=0.5,0.6,0.7,0.8 -select knee
//
// Scenario files round-trip the same specs as JSON, so grids run
// without recompiling:
//
//	disksim -trace nersc.trace -sweep threshold=60,1800 -spec-out grid.json
//	disksim -spec grid.json -seed 7
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"diskpack/internal/disk"
	"diskpack/internal/farm"
	"diskpack/internal/trace"
)

// axisFlags collects repeated -sweep flags.
type axisFlags []string

func (a *axisFlags) String() string { return strings.Join(*a, "; ") }
func (a *axisFlags) Set(s string) error {
	*a = append(*a, s)
	return nil
}

func main() {
	var sweeps axisFlags
	var (
		scenario  = flag.String("scenario", "", "run a registered scenario by name (see -scenarios)")
		list      = flag.Bool("scenarios", false, "list registered scenarios and exit")
		tracePath = flag.String("trace", "", "input trace file (ad-hoc mode)")
		assignIn  = flag.String("assign", "", "file→disk map (one disk per line); overrides -algo")
		algo      = flag.String("algo", "pack", "allocator when -assign is absent: pack, pack4, random, ffd, firstfit, bestfit, chp")
		capL      = flag.Float64("L", 0.7, "load constraint for packing")
		farmN     = flag.Int("disks", 0, "farm size (0 = as many as the allocation uses)")
		threshold = flag.String("threshold", "breakeven", "idleness threshold in seconds, 'breakeven', 'never', 'immediate', 'adaptive', or 'randomized'")
		cacheB    = flag.Float64("cache", 0, "LRU cache bytes (0 = none; paper uses 16e9)")
		seed      = flag.Int64("seed", 1, "seed for random placement and randomized policies")
		workers   = flag.Int("workers", 0, "parallel sweep simulations (0 = GOMAXPROCS)")
		selectS   = flag.String("select", "", "sweep operating-point rule: slo=SECONDS, knee, pareto (default none)")
		specIn    = flag.String("spec", "", "run a JSON scenario file (a Spec or a Sweep; see -spec-out)")
		specOut   = flag.String("spec-out", "", "write the assembled spec/sweep as JSON and exit")
		verbose   = flag.Bool("v", false, "per-disk breakdown")
	)
	flag.Var(&sweeps, "sweep", "sweep axis dim=v1,v2,... (repeatable; dims: threshold, farm, cache, L, v, rate, alloc, seed)")
	flag.Parse()

	if *list {
		listScenarios()
		return
	}

	axes := make([]farm.Axis, 0, len(sweeps))
	for _, s := range sweeps {
		ax, err := farm.ParseAxis(s)
		if err != nil {
			fatal(err)
		}
		axes = append(axes, ax)
	}
	selector := farm.Selector{}
	if *selectS != "" {
		var err error
		if selector, err = farm.ParseSelector(*selectS); err != nil {
			fatal(err)
		}
	}

	if *specIn != "" {
		if len(axes) > 0 || *selectS != "" || *specOut != "" {
			fatal(fmt.Errorf("-sweep/-select/-spec-out cannot be combined with -spec (edit the file instead)"))
		}
		f, err := os.Open(*specIn)
		if err != nil {
			fatal(err)
		}
		doc, err := farm.DecodeFile(f)
		f.Close()
		if err != nil {
			fatal(err)
		}
		if doc.Sweep != nil {
			runSweep(*doc.Sweep, *seed, *workers, *verbose)
			return
		}
		m, err := farm.Run(*doc.Spec, *seed)
		if err != nil {
			fatal(err)
		}
		printMetrics(m, "", doc.Spec.CacheBytes > 0, *verbose)
		return
	}

	// Resolve the base spec: a registered scenario or the ad-hoc flags.
	var base farm.Spec
	switch {
	case *scenario != "":
		sc, ok := farm.Lookup(*scenario)
		if !ok {
			fatal(fmt.Errorf("unknown scenario %q (use -scenarios to list)", *scenario))
		}
		if len(axes) == 0 && *selectS == "" && *specOut == "" {
			res, err := farm.RunScenario(*scenario, *seed)
			if err != nil {
				fatal(err)
			}
			printScenario(res, *verbose)
			return
		}
		base = sc.Spec
		if sc.Sweep != nil {
			// The scenario's own threshold search joins the grid: its
			// axis comes first and its SLO rule applies unless -select
			// overrides it.
			grid := sc.Sweep.Grid(sc.Name, sc.Spec)
			axes = append(grid.Axes, axes...)
			if *selectS == "" {
				selector = grid.Select
			}
		}
	case *tracePath == "":
		fatal(fmt.Errorf("one of -scenario, -trace, or -spec is required (use -scenarios to list)"))
	default:
		f, err := os.Open(*tracePath)
		if err != nil {
			fatal(err)
		}
		tr, err := trace.Read(f)
		f.Close()
		if err != nil {
			fatal(err)
		}
		alloc, err := allocSpec(*assignIn, *algo, *capL, *farmN)
		if err != nil {
			fatal(err)
		}
		spin, err := spinSpec(*threshold)
		if err != nil {
			fatal(err)
		}
		base = farm.Spec{
			Name:       "disksim",
			Workload:   farm.TraceWorkload(tr),
			Alloc:      alloc,
			Spin:       spin,
			FarmSize:   *farmN,
			CacheBytes: int64(*cacheB),
		}
	}

	if selector.Kind != farm.SelectNone && len(axes) == 0 {
		fatal(fmt.Errorf("-select needs a grid: add at least one -sweep axis"))
	}

	if *specOut != "" {
		doc := farm.File{}
		if len(axes) > 0 {
			doc.Sweep = &farm.Sweep{Name: base.Name, Base: base, Axes: axes, Select: selector}
		} else {
			doc.Spec = &base
		}
		f, err := os.Create(*specOut)
		if err != nil {
			fatal(err)
		}
		err = farm.EncodeFile(f, doc)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s\n", *specOut)
		return
	}

	if len(axes) > 0 {
		runSweep(farm.Sweep{Name: base.Name, Base: base, Axes: axes, Select: selector}, *seed, *workers, *verbose)
		return
	}
	m, err := farm.Run(base, *seed)
	if err != nil {
		fatal(err)
	}
	printMetrics(m, *threshold, *cacheB > 0, *verbose)
}

// runSweep executes and prints an ad-hoc grid.
func runSweep(sweep farm.Sweep, seed int64, workers int, verbose bool) {
	res, err := farm.RunSweep(sweep, seed, workers)
	if err != nil {
		fatal(err)
	}
	printSweep(res, verbose)
}

func listScenarios() {
	for _, sc := range farm.Scenarios() {
		kind := "run"
		if sc.Sweep != nil {
			kind = fmt.Sprintf("sweep over %d thresholds", len(sc.Sweep.Thresholds))
		}
		fmt.Printf("%-18s %-10s %s\n", sc.Name, kind, sc.Doc)
	}
}

func printScenario(res *farm.Result, verbose bool) {
	fmt.Printf("scenario %s — %s\n", res.Scenario.Name, res.Scenario.Doc)
	if res.Scenario.Sweep == nil {
		fmt.Println()
		printMetrics(res.Runs[0], "", res.Scenario.Spec.CacheBytes > 0, verbose)
		return
	}
	fmt.Printf("SLO: p95 response <= %g s\n\n", res.Scenario.Sweep.MaxP95)
	fmt.Printf("%-18s %10s %10s %10s %10s %8s\n", "point", "power(W)", "saving", "p95(s)", "mean(s)", "meets?")
	for i, m := range res.Runs {
		mark := "no"
		if m.RespP95 <= res.Scenario.Sweep.MaxP95 {
			mark = "yes"
		}
		if i == res.Best {
			mark = "chosen"
		}
		fmt.Printf("%-18s %10.1f %9.1f%% %10.2f %10.2f %8s\n",
			res.Labels[i], m.AvgPower, m.PowerSavingRatio*100, m.RespP95, m.RespMean, mark)
	}
	if res.Best < 0 {
		fmt.Println("\nno threshold meets the SLO — add disks or relax the target")
	} else {
		best := res.Runs[res.Best]
		fmt.Printf("\noperating point: %s (%.1f W, p95 %.2f s)\n", res.Labels[res.Best], best.AvgPower, best.RespP95)
	}
}

// printSweep renders a grid result: one row per point plus the
// selector's verdict.
func printSweep(res *farm.SweepResult, verbose bool) {
	name := res.Sweep.Name
	if name == "" {
		name = "sweep"
	}
	fmt.Printf("sweep %s — %d points\n", name, len(res.Points))
	if res.Sweep.PlanOnly {
		printPlanSweep(res)
		return
	}
	sel := res.Sweep.Select
	switch sel.Kind {
	case farm.SelectMinEnergySLO:
		fmt.Printf("selector: min energy with p95 response <= %g s\n", sel.MaxP95)
	case farm.SelectKnee:
		fmt.Println("selector: knee of the energy/response curve")
	case farm.SelectPareto:
		fmt.Println("selector: pareto front of (energy, mean response)")
	}
	onFront := make(map[int]bool, len(res.Front))
	for _, i := range res.Front {
		onFront[i] = true
	}
	width := 24
	for i := range res.Points {
		if len(res.Points[i].Label) > width {
			width = len(res.Points[i].Label)
		}
	}
	fmt.Printf("\n%-*s %10s %10s %10s %10s %8s\n", width, "point", "power(W)", "saving", "p95(s)", "mean(s)", "")
	for i := range res.Points {
		m := res.Points[i].Metrics
		mark := ""
		switch {
		case i == res.Best:
			mark = "chosen"
		case onFront[i]:
			mark = "front"
		case sel.Kind == farm.SelectMinEnergySLO && m.RespP95 <= sel.MaxP95:
			mark = "ok"
		}
		fmt.Printf("%-*s %10.1f %9.1f%% %10.2f %10.2f %8s\n",
			width, res.Points[i].Label, m.AvgPower, m.PowerSavingRatio*100, m.RespP95, m.RespMean, mark)
	}
	switch {
	case res.Best >= 0:
		best := res.Points[res.Best]
		fmt.Printf("\noperating point: %s (%.1f W, p95 %.2f s)\n", best.Label, best.Metrics.AvgPower, best.Metrics.RespP95)
	case sel.Kind == farm.SelectMinEnergySLO:
		fmt.Println("\nno point meets the SLO — add disks or relax the target")
	case sel.Kind == farm.SelectPareto:
		fmt.Printf("\npareto front: %d of %d points\n", len(res.Front), len(res.Points))
	}
	if verbose {
		for i := range res.Points {
			fmt.Printf("\n== %s ==\n", res.Points[i].Label)
			printMetrics(res.Points[i].Metrics, "", res.Points[i].Spec.CacheBytes > 0, true)
		}
	}
}

// printPlanSweep renders a plan-only grid: allocation quality per
// point, no simulation metrics and no operating point.
func printPlanSweep(res *farm.SweepResult) {
	fmt.Println("plan only: allocation stage, no simulation")
	width := 24
	for i := range res.Points {
		if len(res.Points[i].Label) > width {
			width = len(res.Points[i].Label)
		}
	}
	fmt.Printf("\n%-*s %8s %10s %8s %10s\n", width, "point", "disks", "lower-bnd", "rho", "thm1-bnd")
	for i := range res.Points {
		a := res.Points[i].Alloc
		fmt.Printf("%-*s %8d %10d %8.3f %10.2f\n",
			width, res.Points[i].Label, a.DisksUsed, a.LowerBound, a.Rho, a.Bound)
	}
}

func printMetrics(m *farm.Metrics, threshold string, withCache, verbose bool) {
	if threshold != "" {
		fmt.Printf("farm              %d disks, threshold %s\n", m.FarmSize, threshold)
	} else {
		fmt.Printf("farm              %d disks (%d used by the allocation)\n", m.FarmSize, m.DisksUsed)
	}
	fmt.Printf("energy            %.3e J over %.0f s (avg %.1f W)\n", m.Energy, m.Duration, m.AvgPower)
	fmt.Printf("no-saving energy  %.3e J\n", m.NoSavingEnergy)
	fmt.Printf("power saving      %.1f%%\n", m.PowerSavingRatio*100)
	fmt.Printf("response time     mean %.2f s  median %.2f s  p95 %.2f s  p99 %.2f s  max %.2f s\n",
		m.RespMean, m.RespMedian, m.RespP95, m.RespP99, m.RespMax)
	fmt.Printf("requests          %d completed, %d unfinished\n", m.Completed, m.Unfinished)
	fmt.Printf("spin transitions  %d up, %d down\n", m.SpinUps, m.SpinDowns)
	fmt.Printf("avg standby disks %.1f of %d\n", m.AvgStandbyDisks, m.FarmSize)
	fmt.Printf("peak disk queue   %d\n", m.Sim.PeakQueue)
	if withCache {
		fmt.Printf("cache             %d hits / %d misses (%.1f%%)\n",
			m.Sim.CacheHits, m.Sim.CacheMisses, m.CacheHitRatio*100)
	}
	if verbose {
		fmt.Println("\ndisk  served  bytesGB  energyKJ  spinups  util%  idle%  standby%")
		for i, b := range m.Sim.PerDisk {
			total := m.Duration
			fmt.Printf("%4d  %6d  %7.1f  %8.1f  %7d  %5.1f  %5.1f  %8.1f\n",
				i, b.Served, float64(b.BytesRead)/1e9, b.Energy/1e3, b.SpinUps,
				100*m.Utilization[i],
				100*b.Durations[disk.Idle]/total,
				100*b.Durations[disk.Standby]/total)
		}
	}
}

func allocSpec(assignPath, algo string, capL float64, farmN int) (farm.AllocSpec, error) {
	if assignPath != "" {
		assign, err := readAssign(assignPath)
		if err != nil {
			return farm.AllocSpec{}, err
		}
		return farm.Explicit(assign), nil
	}
	switch algo {
	case "pack":
		return farm.AllocSpec{Kind: farm.AllocPack, CapL: capL}, nil
	case "pack4":
		return farm.AllocSpec{Kind: farm.AllocPackV, CapL: capL, V: 4}, nil
	case "random":
		return farm.AllocSpec{Kind: farm.AllocRandom, CapL: capL, Disks: farmN}, nil
	case "ffd":
		return farm.AllocSpec{Kind: farm.AllocFirstFitDecreasing, CapL: capL}, nil
	case "firstfit":
		return farm.AllocSpec{Kind: farm.AllocFirstFit, CapL: capL}, nil
	case "bestfit":
		return farm.AllocSpec{Kind: farm.AllocBestFit, CapL: capL}, nil
	case "chp":
		return farm.AllocSpec{Kind: farm.AllocChangHwangPark, CapL: capL}, nil
	default:
		return farm.AllocSpec{}, fmt.Errorf("unknown algorithm %q", algo)
	}
}

func spinSpec(threshold string) (farm.SpinSpec, error) {
	switch threshold {
	case "breakeven":
		return farm.SpinSpec{Kind: farm.SpinBreakEven}, nil
	case "never":
		return farm.SpinSpec{Kind: farm.SpinNever}, nil
	case "immediate":
		return farm.SpinSpec{Kind: farm.SpinImmediate}, nil
	case "adaptive":
		return farm.SpinSpec{Kind: farm.SpinAdaptive}, nil
	case "randomized":
		return farm.SpinSpec{Kind: farm.SpinRandomized}, nil
	default:
		th, err := strconv.ParseFloat(threshold, 64)
		if err != nil {
			return farm.SpinSpec{}, fmt.Errorf("bad -threshold: %w", err)
		}
		return farm.FixedSpin(th), nil
	}
}

func readAssign(path string) ([]int, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var out []int
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := sc.Text()
		if line == "" {
			continue
		}
		d, err := strconv.Atoi(line)
		if err != nil {
			return nil, fmt.Errorf("bad assignment line %q: %w", line, err)
		}
		out = append(out, d)
	}
	return out, sc.Err()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "disksim:", err)
	os.Exit(1)
}
