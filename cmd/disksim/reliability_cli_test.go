package main

import (
	"bytes"
	"io"
	"strings"
	"testing"
)

// TestReliabilityFlagValidation pins the new flags' failure modes: out
// of range budgets, -afr-budget without an SLO rule to upgrade, and
// -cycle-cap against bases whose policy is not the CLI's to rewrite.
func TestReliabilityFlagValidation(t *testing.T) {
	dir := t.TempDir()
	spec := writeGridSpec(t, dir)
	fail := [][]string{
		{"-scenario", "bursty", "-afr-budget", "1.5"},                                                 // AFR is a rate in (0,1)
		{"-scenario", "bursty", "-afr-budget", "0"},                                                   // zero budget is no budget
		{"-scenario", "bursty", "-cycle-cap", "-1"},                                                   // negative cycles
		{"-scenario", "bursty", "-afr-budget", "0.1"},                                                 // no SLO selector to upgrade
		{"-scenario", "bursty", "-sweep", "threshold=30,60", "-select", "knee", "-afr-budget", "0.1"}, // knee has no budgets
		{"-scenario", "reliability-sweep", "-cycle-cap", "2"},                                         // grid fixes each point's policy
		{"-spec", spec, "-cycle-cap", "2"},                                                            // spec files are edited, not flagged
		{"-spec", spec, "-afr-budget", "0.1"},
	}
	for _, args := range fail {
		if err := run(args, io.Discard); err == nil {
			t.Errorf("run(%v) succeeded, want validation error", args)
		}
	}

	var out bytes.Buffer
	if err := run([]string{"-scenario", "bursty", "-cycle-cap", "2", "-seed", "5"}, &out); err != nil {
		t.Fatalf("-cycle-cap on a break-even base: %v", err)
	}
	if !strings.Contains(out.String(), "drive life") {
		t.Errorf("capped run report lacks the drive-life line:\n%s", out.String())
	}
}

// TestAFRBudgetUpgradesSelector checks the selector upgrade end to
// end: the reliability-sweep grid re-runs under a replacement AFR
// budget and the report names both constraints.
func TestAFRBudgetUpgradesSelector(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-scenario", "reliability-sweep", "-afr-budget", "0.5", "-seed", "7"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "AFR <= 50%") {
		t.Errorf("report does not carry the AFR budget:\n%s", out.String())
	}
}

// TestFailureInjectionCLIDeterministic is the in-process twin of the
// CI reliability-smoke job: two runs of the failure-injection scenario
// at the same seed must print byte-identical reports.
func TestFailureInjectionCLIDeterministic(t *testing.T) {
	var a, b bytes.Buffer
	if err := run([]string{"-scenario", "failure-injection", "-seed", "7"}, &a); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-scenario", "failure-injection", "-seed", "7"}, &b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatal("failure-injection reports differ across identical runs")
	}
	if !strings.Contains(a.String(), "failures") {
		t.Errorf("failure-injection report lacks the failures line:\n%s", a.String())
	}
}
