package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"diskpack/internal/obs"
)

func readSpanFile(t *testing.T, path string) *obs.SpanLog {
	t.Helper()
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	log, err := obs.ReadSpans(f)
	if err != nil {
		t.Fatalf("%s: %v", path, err)
	}
	return log
}

// TestFleetObsCLI drives the whole fleet-observability surface the CI
// smoke job uses: a -serve coordinator and two -work processes all
// recording -obs-out span logs, a report byte-identical to the
// uninstrumented single-process run, and -merge-trace folding the
// three logs into one valid Chrome-trace JSON.
func TestFleetObsCLI(t *testing.T) {
	dir := t.TempDir()
	spec := writeGridSpec(t, dir)

	var single bytes.Buffer
	if err := run([]string{"-spec", spec, "-seed", "5"}, &single); err != nil {
		t.Fatal(err)
	}

	obsDir := filepath.Join(dir, "obs")
	if err := os.MkdirAll(obsDir, 0o755); err != nil {
		t.Fatal(err)
	}
	addr := freeAddr(t)
	var served bytes.Buffer
	serveErr := make(chan error, 1)
	go func() {
		serveErr <- run([]string{"-spec", spec, "-seed", "5", "-serve", addr,
			"-lease", "5s", "-batch", "2",
			"-obs-out", filepath.Join(obsDir, "coordinator.spans.jsonl")}, &served)
	}()
	waitDialable(t, addr)

	workErr := make(chan error, 2)
	for i := 0; i < 2; i++ {
		go func(i int) {
			workErr <- run([]string{"-work", "http://" + addr, "-workers", "2",
				"-name", fmt.Sprintf("w%d", i),
				"-obs-out", filepath.Join(obsDir, fmt.Sprintf("w%d.spans.jsonl", i))}, io.Discard)
		}(i)
	}
	for i := 0; i < 2; i++ {
		if err := <-workErr; err != nil {
			t.Fatal(err)
		}
	}
	if err := <-serveErr; err != nil {
		t.Fatal(err)
	}
	if single.String() != served.String() {
		t.Fatalf("instrumented coordinator report differs from the single-process run:\n--- single\n%s--- served\n%s", single.String(), served.String())
	}

	// All three span logs parse and agree on the sweep; the healthy
	// pool's grant and point counts both equal the grid size.
	coLog := readSpanFile(t, filepath.Join(obsDir, "coordinator.spans.jsonl"))
	grants, points := 0, 0
	for _, sp := range coLog.Spans {
		if sp.Phase == "grant" {
			grants++
		}
	}
	for i := 0; i < 2; i++ {
		wl := readSpanFile(t, filepath.Join(obsDir, fmt.Sprintf("w%d.spans.jsonl", i)))
		if wl.Header.SweepHash != coLog.Header.SweepHash {
			t.Errorf("worker %d sweep hash %q, coordinator %q", i, wl.Header.SweepHash, coLog.Header.SweepHash)
		}
		for _, sp := range wl.Spans {
			if sp.Phase == "point" {
				points++
			}
		}
	}
	if n := coLog.Header.Points; grants != n || points != n {
		t.Errorf("%d grant and %d point spans, want %d each (points × attempts)", grants, points, n)
	}

	// -merge-trace folds the logs into one valid Chrome-trace JSON.
	tracePath := filepath.Join(dir, "sweep.trace.json")
	var mergeOut bytes.Buffer
	if err := run([]string{"-merge-trace", obsDir, "-trace-out", tracePath}, &mergeOut); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(mergeOut.String(), "3 tracks") {
		t.Errorf("merge report %q, want 3 tracks", mergeOut.String())
	}
	data, err := os.ReadFile(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	var trace struct {
		TraceEvents []struct {
			Name string `json:"name"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &trace); err != nil {
		t.Fatalf("merged trace not valid JSON: %v", err)
	}
	tracked := 0
	for _, ev := range trace.TraceEvents {
		if ev.Name == "point" {
			tracked++
		}
	}
	if tracked != coLog.Header.Points {
		t.Errorf("merged trace has %d point spans, want %d", tracked, coLog.Header.Points)
	}

	// Without -trace-out the trace goes to stdout.
	var stdout bytes.Buffer
	if err := run([]string{"-merge-trace", obsDir}, &stdout); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(stdout.Bytes(), &trace); err != nil {
		t.Fatalf("stdout trace not valid JSON: %v", err)
	}
}

// TestRunShardObsOut pins -run-shard's span log: a resume event with
// the reused/rerun split, one point event per computed point, and on a
// full resume an event showing nothing re-ran.
func TestRunShardObsOut(t *testing.T) {
	dir := t.TempDir()
	spec := writeGridSpec(t, dir)
	shardDir := filepath.Join(dir, "shards")
	if err := run([]string{"-spec", spec, "-seed", "5", "-shards", "2", "-shard-out", shardDir}, io.Discard); err != nil {
		t.Fatal(err)
	}
	manifest := filepath.Join(shardDir, "shard-000.json")

	spansPath := filepath.Join(dir, "shard0.spans.jsonl")
	if err := run([]string{"-run-shard", manifest, "-obs-out", spansPath}, io.Discard); err != nil {
		t.Fatal(err)
	}
	log := readSpanFile(t, spansPath)
	if log.Header.Role != "shard" || log.Header.Track != "shard-0" {
		t.Errorf("span header %+v, want role shard, track shard-0", log.Header)
	}
	points := 0
	var resume *obs.Span
	for i, sp := range log.Spans {
		switch sp.Phase {
		case "point":
			points++
		case "resume":
			resume = &log.Spans[i]
		}
	}
	if points != 2 {
		t.Errorf("%d point events, want the shard's 2 points", points)
	}
	if resume == nil {
		t.Fatal("no resume event in the span log")
	}
	if got := resume.Args["reused"]; got != float64(0) {
		t.Errorf("fresh run resume event reused=%v, want 0", got)
	}

	// Re-run: the result file resumes everything, so the event reports
	// 2 reused / 0 rerun and no point events follow.
	rerunPath := filepath.Join(dir, "shard0-rerun.spans.jsonl")
	if err := run([]string{"-run-shard", manifest, "-obs-out", rerunPath}, io.Discard); err != nil {
		t.Fatal(err)
	}
	log = readSpanFile(t, rerunPath)
	points, resume = 0, nil
	for i, sp := range log.Spans {
		switch sp.Phase {
		case "point":
			points++
		case "resume":
			resume = &log.Spans[i]
		}
	}
	if points != 0 {
		t.Errorf("full resume re-ran %d points", points)
	}
	if resume == nil || resume.Args["reused"] != float64(2) || resume.Args["rerun"] != float64(0) {
		t.Errorf("resume event %+v, want reused=2 rerun=0", resume)
	}
}

// TestFleetObsFlagValidation pins the loud-failure contract of the new
// flags: -obs-out outside its modes and -merge-trace alongside
// unrelated flags are errors, not silent no-ops.
func TestFleetObsFlagValidation(t *testing.T) {
	dir := t.TempDir()
	spec := writeGridSpec(t, dir)
	cases := [][]string{
		{"-spec", spec, "-obs-out", "x.spans.jsonl"},              // single runs use -trace-out
		{"-scenario", "paper-synth", "-obs-out", "x.spans.jsonl"}, // ditto
		{"-merge", dir, "-obs-out", "x.spans.jsonl"},              // merge records nothing
		{"-merge-trace", dir, "-select", "knee"},                  // merge-trace only folds logs
		{"-merge-trace", dir, "-spec", spec},                      // ditto
		{"-merge-trace", dir, "-telemetry-out", "t.jsonl"},        // output is a trace, not telemetry
		{"-merge-trace", filepath.Join(dir, "missing")},           // unreadable directory
	}
	for _, args := range cases {
		if err := run(args, io.Discard); err == nil {
			t.Errorf("run(%v) succeeded, want an error", args)
		}
	}
	// An empty directory names the convention in its error.
	if err := run([]string{"-merge-trace", dir}, io.Discard); err == nil ||
		!strings.Contains(err.Error(), "*.spans.jsonl") {
		t.Errorf("merge-trace of a log-less directory: %v", err)
	}
}
