package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// The profiling flags must produce non-empty pprof files on the normal
// exit path, for any mode (here: a plain scenario run).
func TestProfileFlagsWriteFiles(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.pprof")
	mem := filepath.Join(dir, "mem.pprof")
	var out bytes.Buffer
	err := run([]string{
		"-scenario", "paper-synth",
		"-cpuprofile", cpu,
		"-memprofile", mem,
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{cpu, mem} {
		fi, err := os.Stat(p)
		if err != nil {
			t.Fatalf("profile not written: %v", err)
		}
		if fi.Size() == 0 {
			t.Errorf("%s is empty", p)
		}
	}
	// A pprof file is gzipped protobuf: check the gzip magic so an
	// accidentally-empty-but-created file cannot pass.
	b, err := os.ReadFile(cpu)
	if err != nil {
		t.Fatal(err)
	}
	if len(b) < 2 || b[0] != 0x1f || b[1] != 0x8b {
		t.Errorf("cpu profile does not look like a pprof file (first bytes % x)", b[:min(4, len(b))])
	}
}

// An unwritable profile path must fail the run up front, not at exit.
func TestProfileFlagBadPathFails(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{
		"-scenario", "paper-synth",
		"-cpuprofile", filepath.Join(t.TempDir(), "no-such-dir", "cpu.pprof"),
	}, &out)
	if err == nil || !strings.Contains(err.Error(), "cpuprofile") {
		t.Fatalf("want -cpuprofile error, got %v", err)
	}
}
