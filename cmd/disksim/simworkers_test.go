package main

import (
	"bytes"
	"strings"
	"testing"
)

// -sim-workers is plumbing, not policy: any worker count must produce
// byte-identical CLI output, on open-loop and controlled scenarios
// alike.
func TestSimWorkersOutputIdentical(t *testing.T) {
	for _, scenario := range []string{"hetero", "controlled-bursty"} {
		var ref bytes.Buffer
		if err := run([]string{"-scenario", scenario, "-seed", "3", "-sim-workers", "1"}, &ref); err != nil {
			t.Fatal(err)
		}
		for _, w := range []string{"4", "0"} { // explicit shards and one-per-core
			var got bytes.Buffer
			if err := run([]string{"-scenario", scenario, "-seed", "3", "-sim-workers", w}, &got); err != nil {
				t.Fatal(err)
			}
			if got.String() != ref.String() {
				t.Errorf("%s: -sim-workers %s output differs from -sim-workers 1", scenario, w)
			}
		}
	}
}

// The flag validates like -workers and composes with every mode
// (it only shards the simulations a mode runs).
func TestSimWorkersFlagValidation(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"-scenario", "hetero", "-sim-workers", "-2"}, &out)
	if err == nil || !strings.Contains(err.Error(), "-sim-workers") {
		t.Fatalf("negative -sim-workers not rejected: %v", err)
	}
	if err := run([]string{"-scenarios", "-sim-workers", "4"}, &out); err != nil {
		t.Errorf("-sim-workers rejected alongside -scenarios: %v", err)
	}
}
