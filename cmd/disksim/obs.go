package main

// The CLI face of the observability layer (internal/obs): -trace-out
// and -telemetry-out attach file sinks to a single run, -metrics-addr
// serves the live registry. All three are observation-only — the
// simulation's results are byte-identical with or without them — and
// the file sinks flush on every exit path, SIGINT included, the same
// way the pprof machinery does.

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"diskpack/internal/control"
	"diskpack/internal/farm"
	"diskpack/internal/obs"
)

// obsOutputs holds the live observability sinks of one CLI invocation:
// the trace recorder and telemetry writer bound to their output files,
// the metrics server, and the SIGINT plumbing that turns the first
// interrupt into a clean mid-run abort (so partial output still
// flushes). A nil *obsOutputs is the disabled state — every method is
// nil-safe — so call sites never branch on whether -trace-out was set.
type obsOutputs struct {
	observer *obs.RunObserver
	rec      *obs.TraceRecorder
	traceF   *os.File
	tw       *obs.TelemetryWriter
	srv      *http.Server
	sigc     chan os.Signal
	restore  *obs.RunObserver // previous farm observer, re-installed by stop
	stopOnce sync.Once
}

// startObs wires the observability flags into a running obsOutputs:
// output files are created eagerly (a bad path must fail before the
// run, not after it), the metrics server starts listening, and the
// assembled RunObserver is installed as the process-wide farm observer.
// With no flag set it returns nil, the fully-disabled state.
func startObs(traceOut, telemetryOut, metricsAddr string) (ob *obsOutputs, err error) {
	if traceOut == "" && telemetryOut == "" && metricsAddr == "" {
		return nil, nil
	}
	ob = &obsOutputs{}
	defer func() {
		// Abandon half-built outputs on error so a bad -metrics-addr
		// does not leak an open trace file.
		if err != nil {
			ob.stop()
		}
	}()
	reg := obs.NewRegistry()
	ob.observer = &obs.RunObserver{Metrics: obs.NewRunMetrics(reg, farm.RespBuckets())}
	if traceOut != "" {
		ob.traceF, err = os.Create(traceOut)
		if err != nil {
			return nil, fmt.Errorf("-trace-out: %w", err)
		}
		ob.rec = obs.NewTraceRecorder()
		ob.observer.Trace = ob.rec
	}
	if telemetryOut != "" {
		f, err := os.Create(telemetryOut)
		if err != nil {
			return nil, fmt.Errorf("-telemetry-out: %w", err)
		}
		ob.tw = obs.NewTelemetryWriter(f)
		ob.observer.Telemetry = ob.tw
	}
	if metricsAddr != "" {
		ln, err := net.Listen("tcp", metricsAddr)
		if err != nil {
			return nil, fmt.Errorf("-metrics-addr: %w", err)
		}
		ob.srv = &http.Server{Handler: obs.NewServeMux(reg)}
		go ob.srv.Serve(ln)
		fmt.Fprintf(os.Stderr, "disksim: metrics on http://%s/metrics\n", ln.Addr())
	}
	if ob.files() {
		// The first SIGINT/SIGTERM requests a clean abort: the run stops
		// at the next window boundary with obs.ErrInterrupted and the
		// deferred stop flushes whatever was recorded. Deregistering
		// immediately after means a second Ctrl-C kills by default
		// delivery instead of being swallowed.
		var interrupted atomic.Bool
		ob.observer.Interrupt = interrupted.Load
		ob.sigc = make(chan os.Signal, 1)
		signal.Notify(ob.sigc, os.Interrupt, syscall.SIGTERM)
		go func(sigc chan os.Signal) {
			if _, ok := <-sigc; ok {
				interrupted.Store(true)
				signal.Stop(sigc)
			}
		}(ob.sigc)
	}
	ob.restore = farm.SetRunObserver(ob.observer)
	return ob, nil
}

// files reports whether any file sink is attached (the modes that need
// the single-run restriction and the graceful-SIGINT path).
func (ob *obsOutputs) files() bool {
	return ob != nil && (ob.rec != nil || ob.tw != nil)
}

// beginRun writes the telemetry header for the run about to start.
// No-op without a telemetry sink.
func (ob *obsOutputs) beginRun(spec farm.Spec, seed int64) error {
	if ob == nil || ob.tw == nil {
		return nil
	}
	return ob.tw.WriteHeader(obs.TelemetryHeader{
		Spec:           spec.Name,
		Seed:           seed,
		Epoch:          obsEpoch(spec),
		IdleGapBuckets: farm.IdleGapBuckets(),
		RespBuckets:    farm.RespBuckets(),
	})
}

// obsEpoch is the telemetry window length of a single observed run:
// a controlled spec's own epoch, or the control plane's default for
// open-loop runs (which stream through RunStream solely so windows
// exist to report).
func obsEpoch(spec farm.Spec) float64 {
	if spec.Control != nil && spec.Control.Epoch > 0 {
		return spec.Control.Epoch
	}
	return control.DefaultEpoch
}

// runErr maps a run error to its CLI form: an observer-requested abort
// becomes a message pointing at the flushed partial output (the
// deferred stop has not run yet, but is guaranteed to).
func (ob *obsOutputs) runErr(err error) error {
	if errors.Is(err, obs.ErrInterrupted) {
		return fmt.Errorf("%w — partial trace/telemetry flushed", err)
	}
	return err
}

// stop tears the outputs down in sink order: the trace file is
// rendered and closed, the telemetry writer flushed and closed, the
// metrics server shut down, and the prior farm observer re-installed.
// Idempotent (the startObs error path and run's defer both call it)
// and nil-safe; the first error wins.
func (ob *obsOutputs) stop() (err error) {
	if ob == nil {
		return nil
	}
	ob.stopOnce.Do(func() {
		farm.SetRunObserver(ob.restore)
		if ob.sigc != nil {
			signal.Stop(ob.sigc)
			close(ob.sigc)
		}
		if ob.traceF != nil {
			werr := error(nil)
			if ob.rec != nil {
				werr = ob.rec.WriteChromeTrace(ob.traceF)
			}
			if cerr := ob.traceF.Close(); werr == nil {
				werr = cerr
			}
			if werr != nil && err == nil {
				err = fmt.Errorf("-trace-out: %w", werr)
			}
		}
		if cerr := ob.tw.Close(); cerr != nil && err == nil {
			err = fmt.Errorf("-telemetry-out: %w", cerr)
		}
		if ob.srv != nil {
			ctx, cancel := context.WithTimeout(context.Background(), time.Second)
			if serr := ob.srv.Shutdown(ctx); serr != nil {
				ob.srv.Close()
			}
			cancel()
		}
	})
	return err
}

// runObserved executes one open-loop (or control-hooked) spec with
// file sinks attached. Open-loop specs go through the telemetry
// stream with a do-nothing sink — byte-identical to farm.Run — so
// epoch windows exist for the telemetry log and the trace's counter
// track; controlled spec files keep going through farm.Run, whose
// control hook streams internally.
func runObserved(out io.Writer, ob *obsOutputs, spec farm.Spec, seed int64, thr string, verbose bool) error {
	if err := ob.beginRun(spec, seed); err != nil {
		return err
	}
	var m *farm.Metrics
	var err error
	if spec.Control != nil {
		m, err = farm.Run(spec, seed)
	} else {
		m, err = farm.RunStream(spec, seed, obsEpoch(spec), nil)
	}
	if err != nil {
		return ob.runErr(err)
	}
	printMetrics(out, m, thr, spec.CacheBytes > 0, verbose)
	return nil
}
