// Command diskpack allocates the files of a trace to disks with a
// chosen algorithm and reports the packing quality (disks used, lower
// bound, Theorem 1 ceiling, per-disk fill).
//
// Usage:
//
//	diskpack -trace nersc.trace -algo pack -L 0.7
//	diskpack -trace synth.trace -algo pack4 -L 0.5 -assign out.map
//	diskpack -trace synth.trace -algo ffd -L 0.8 -empirical
package main

import (
	"bufio"
	"flag"
	"fmt"
	"math/rand"
	"os"

	"diskpack/internal/core"
	"diskpack/internal/disk"
	"diskpack/internal/trace"
)

func main() {
	var (
		tracePath = flag.String("trace", "", "input trace file (required)")
		algo      = flag.String("algo", "pack", "allocator: pack, pack2, pack4, pack8, chp, ffd, firstfit, bestfit, random")
		capL      = flag.Float64("L", 0.7, "load constraint as fraction of disk transfer capability")
		farm      = flag.Int("disks", 0, "random: farm size (0 = same as pack)")
		seed      = flag.Int64("seed", 1, "random: seed")
		empirical = flag.Bool("empirical", false, "use measured per-file rates instead of stored ones")
		assignOut = flag.String("assign", "", "write file→disk map (one disk number per line)")
	)
	flag.Parse()
	if *tracePath == "" {
		fatal(fmt.Errorf("-trace is required"))
	}
	f, err := os.Open(*tracePath)
	if err != nil {
		fatal(err)
	}
	tr, err := trace.Read(f)
	f.Close()
	if err != nil {
		fatal(err)
	}
	if *empirical {
		tr.SetEmpiricalRates()
	}
	params := disk.DefaultParams()
	sizes := make([]int64, len(tr.Files))
	rates := make([]float64, len(tr.Files))
	for i, fi := range tr.Files {
		sizes[i] = fi.Size
		rates[i] = fi.Rate
	}
	items, err := core.BuildItems(sizes, rates, params.ServiceTime, params.CapacityBytes, *capL)
	if err != nil {
		fatal(err)
	}

	var a *core.Assignment
	switch *algo {
	case "pack":
		a, err = core.PackDisks(items)
	case "pack2":
		a, err = core.PackDisksV(items, 2)
	case "pack4":
		a, err = core.PackDisksV(items, 4)
	case "pack8":
		a, err = core.PackDisksV(items, 8)
	case "chp":
		a, err = core.ChangHwangPark(items)
	case "ffd":
		a, err = core.FirstFitDecreasing(items)
	case "firstfit":
		a, err = core.FirstFit(items)
	case "bestfit":
		a, err = core.BestFit(items)
	case "random":
		n := *farm
		if n == 0 {
			ref, err2 := core.PackDisks(items)
			if err2 != nil {
				fatal(err2)
			}
			n = ref.NumDisks
		}
		a, err = core.RandomAssignCapacity(items, n, rand.New(rand.NewSource(*seed)))
	default:
		err = fmt.Errorf("unknown algorithm %q", *algo)
	}
	if err != nil {
		fatal(err)
	}

	lb := core.LowerBoundDisks(items)
	rho := core.Rho(items)
	fmt.Printf("algorithm        %s\n", *algo)
	fmt.Printf("files            %d\n", len(items))
	fmt.Printf("disks used       %d\n", a.NumDisks)
	fmt.Printf("lower bound      %d\n", lb)
	fmt.Printf("rho              %.4f\n", rho)
	fmt.Printf("theorem-1 bound  %.1f\n", core.ApproxBound(items))
	sizesSum, loadsSum := a.Totals(items)
	var maxS, maxL, avgS, avgL float64
	for d := range sizesSum {
		if sizesSum[d] > maxS {
			maxS = sizesSum[d]
		}
		if loadsSum[d] > maxL {
			maxL = loadsSum[d]
		}
		avgS += sizesSum[d]
		avgL += loadsSum[d]
	}
	n := float64(a.NumDisks)
	fmt.Printf("fill size        avg %.3f max %.3f\n", avgS/n, maxS)
	fmt.Printf("fill load        avg %.3f max %.3f\n", avgL/n, maxL)

	if *assignOut != "" {
		out, err := os.Create(*assignOut)
		if err != nil {
			fatal(err)
		}
		w := bufio.NewWriter(out)
		for _, d := range a.DiskOf {
			fmt.Fprintln(w, d)
		}
		if err := w.Flush(); err != nil {
			fatal(err)
		}
		if err := out.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("assignment       written to %s\n", *assignOut)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "diskpack:", err)
	os.Exit(1)
}
