package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestRepoIsClean runs the linter against the live repository: the doc
// gate CI enforces must hold for the tree the test runs in.
func TestRepoIsClean(t *testing.T) {
	problems, err := lint("../..")
	if err != nil {
		t.Fatal(err)
	}
	if len(problems) > 0 {
		t.Errorf("repository has documentation problems:\n%s", strings.Join(problems, "\n"))
	}
}

// TestLintFindsProblems builds a tiny module with every defect class —
// missing package comment, undocumented exported func/type/value — and
// checks each is reported, while documented and unexported identifiers
// are not.
func TestLintFindsProblems(t *testing.T) {
	dir := t.TempDir()
	root := `package thing

// Good is documented.
func Good() {}

func Bad() {}

type BadType int

var BadValue = 1

// Block-level comments cover every member.
const (
	CoveredA = iota
	CoveredB
)

func unexported() {}
`
	if err := os.WriteFile(filepath.Join(dir, "thing.go"), []byte(root), 0o644); err != nil {
		t.Fatal(err)
	}
	sub := filepath.Join(dir, "internal", "quiet")
	if err := os.MkdirAll(sub, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(sub, "quiet.go"), []byte("package quiet\n"), 0o644); err != nil {
		t.Fatal(err)
	}

	problems, err := lint(dir)
	if err != nil {
		t.Fatal(err)
	}
	joined := strings.Join(problems, "\n")
	for _, want := range []string{"function Bad", "type BadType", "value BadValue", "package has no doc comment"} {
		if !strings.Contains(joined, want) {
			t.Errorf("lint output missing %q:\n%s", want, joined)
		}
	}
	for _, no := range []string{"Good", "Covered", "unexported"} {
		if strings.Contains(joined, no) {
			t.Errorf("lint flagged %q, which is documented or unexported:\n%s", no, joined)
		}
	}
	// thing.go itself has no package comment; that plus the three
	// identifiers plus the quiet package = 5 problems exactly.
	if len(problems) != 5 {
		t.Errorf("got %d problems, want 5:\n%s", len(problems), joined)
	}
}
