// Command doclint is the repository's documentation gate: it fails
// when an exported identifier of the root diskpack package lacks a doc
// comment, or when any package under the module (root, internal/*,
// cmd/*) lacks a package-level doc comment. CI runs it on every push;
// run it locally with
//
//	go run ./cmd/doclint
//
// The rules are deliberately narrower than a general-purpose linter:
// the root package is the public API surface, so every exported type,
// function, constant, and variable there must say what it is; package
// comments everywhere keep `go doc` useful. An identifier inside a
// parenthesized const/var/type block counts as documented when either
// the spec or the enclosing block carries the comment.
package main

import (
	"flag"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

func main() {
	root := flag.String("root", ".", "module root to lint")
	flag.Parse()
	problems, err := lint(*root)
	if err != nil {
		fmt.Fprintln(os.Stderr, "doclint:", err)
		os.Exit(2)
	}
	for _, p := range problems {
		fmt.Println(p)
	}
	if len(problems) > 0 {
		fmt.Fprintf(os.Stderr, "doclint: %d problem(s)\n", len(problems))
		os.Exit(1)
	}
}

// lint returns one line per documentation problem under root, sorted
// for stable output.
func lint(root string) ([]string, error) {
	var problems []string

	// Every package in the module needs a package comment.
	dirs, err := goPackageDirs(root)
	if err != nil {
		return nil, err
	}
	for _, dir := range dirs {
		ok, err := hasPackageComment(dir)
		if err != nil {
			return nil, err
		}
		if !ok {
			rel, _ := filepath.Rel(root, dir)
			problems = append(problems, fmt.Sprintf("%s: package has no doc comment", rel))
		}
	}

	// Every exported identifier of the root package needs a doc comment.
	undocs, err := undocumentedExports(root)
	if err != nil {
		return nil, err
	}
	problems = append(problems, undocs...)
	sort.Strings(problems)
	return problems, nil
}

// goPackageDirs lists every directory under root holding non-test Go
// files, skipping hidden directories and testdata.
func goPackageDirs(root string) ([]string, error) {
	seen := map[string]bool{}
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if path != root && (strings.HasPrefix(name, ".") || name == "testdata" || name == "vendor") {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(d.Name(), ".go") && !strings.HasSuffix(d.Name(), "_test.go") {
			seen[filepath.Dir(path)] = true
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	dirs := make([]string, 0, len(seen))
	for d := range seen {
		dirs = append(dirs, d)
	}
	sort.Strings(dirs)
	return dirs, nil
}

// hasPackageComment reports whether any non-test file in dir carries a
// package doc comment.
func hasPackageComment(dir string) (bool, error) {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, notTest, parser.ParseComments|parser.PackageClauseOnly)
	if err != nil {
		return false, err
	}
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			if f.Doc != nil && len(f.Doc.List) > 0 {
				return true, nil
			}
		}
	}
	return false, nil
}

// undocumentedExports lists the exported root-package identifiers with
// no doc comment, as "file: identifier" lines.
func undocumentedExports(root string) ([]string, error) {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, root, notTest, parser.ParseComments)
	if err != nil {
		return nil, err
	}
	var out []string
	report := func(pos token.Pos, what, name string) {
		p := fset.Position(pos)
		out = append(out, fmt.Sprintf("%s:%d: exported %s %s has no doc comment", filepath.Base(p.Filename), p.Line, what, name))
	}
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				switch d := decl.(type) {
				case *ast.FuncDecl:
					// Methods on exported types count too; the receiver
					// type name filters nothing — an exported method
					// deserves a comment wherever it hangs.
					if d.Name.IsExported() && d.Doc == nil {
						report(d.Pos(), "function", d.Name.Name)
					}
				case *ast.GenDecl:
					blockDoc := d.Doc != nil
					for _, spec := range d.Specs {
						switch s := spec.(type) {
						case *ast.TypeSpec:
							if s.Name.IsExported() && s.Doc == nil && s.Comment == nil && !blockDoc {
								report(s.Pos(), "type", s.Name.Name)
							}
						case *ast.ValueSpec:
							if s.Doc != nil || s.Comment != nil || blockDoc {
								continue
							}
							for _, n := range s.Names {
								if n.IsExported() {
									report(n.Pos(), "value", n.Name)
								}
							}
						}
					}
				}
			}
		}
	}
	return out, nil
}

// notTest filters _test.go files out of a parser.ParseDir pass.
func notTest(fi fs.FileInfo) bool { return !strings.HasSuffix(fi.Name(), "_test.go") }
