package diskpack

import (
	"diskpack/internal/control"
	"diskpack/internal/farm"
)

// This file exports the online control plane (internal/control + the
// telemetry seam in internal/farm): run any FarmSpec closed-loop —
// windowed telemetry feeding a deterministic controller that retunes
// spin thresholds (tail-budget) or re-plans the allocation against the
// observed rate (rate-respec) at epoch boundaries. Controlled specs
// are pure data (FarmControlSpec), so they serialize, sweep, shard,
// and coordinate exactly like static ones; RunFarm, RunSweep, and the
// coordinator all execute them through the same registered runner.

// Control-plane types.
type (
	// ControlWindow is one epoch's telemetry snapshot: per-group
	// arrivals, response quantiles and histogram, energy, spin
	// transitions, standby time, and the idle-gap histogram.
	ControlWindow = farm.Window
	// ControlGroupWindow is one disk group's share of a window.
	ControlGroupWindow = farm.GroupWindow
	// ControllerKind enumerates the built-in controllers.
	ControllerKind = control.Kind
	// Controller observes windows and returns actions; implement it to
	// plug a custom policy into RunControlledStream.
	Controller = control.Controller
	// ControlAction is one actuation a controller requests.
	ControlAction = control.Action
	// ControlResult is a completed controlled run: metrics, windows,
	// and the action log.
	ControlResult = control.Result
	// FarmControlSpec is the serializable closed-loop declaration a
	// FarmSpec carries in its Control field.
	FarmControlSpec = farm.ControlSpec
	// FarmActuator is the actuation surface a streaming sink receives.
	FarmActuator = farm.Actuator
	// FarmStreamSink observes one telemetry window of a streamed run.
	FarmStreamSink = farm.StreamSink
)

// Controller kinds.
const (
	ControllerTailBudget = control.KindTailBudget
	ControllerRateRespec = control.KindRateRespec
)

// Controller axis kind for sweeps (grid positions are controller
// names; "static" is the open-loop point).
const AxisController = farm.AxisController

// AxisExplicitAlloc sweeps over per-position explicit file→disk maps.
const AxisExplicitAlloc = farm.AxisExplicitAlloc

// ParseControllerKind resolves a controller name ("tail-budget",
// "rate-respec").
func ParseControllerKind(s string) (ControllerKind, error) { return control.ParseKind(s) }

// RunControlled executes a controlled spec (Spec.Control != nil): one
// continuous simulation whose controller observes every epoch window
// and actuates at its boundary. Deterministic: same (spec, seed) ⇒
// byte-identical result.
func RunControlled(spec FarmSpec, seed int64) (*ControlResult, error) {
	return control.RunSpec(spec, seed)
}

// RunFarmStream is the raw telemetry seam: execute a (non-controlled)
// spec exactly as RunFarm would while emitting a ControlWindow every
// epoch simulated seconds to sink, which may actuate through the
// FarmActuator. With a do-nothing sink the metrics are byte-identical
// to RunFarm.
func RunFarmStream(spec FarmSpec, seed int64, epoch float64, sink FarmStreamSink) (*FarmMetrics, error) {
	return farm.RunStream(spec, seed, epoch, sink)
}

// ControlWindowIdleGapBuckets returns the telemetry windows' idle-gap
// histogram bucket bounds.
func ControlWindowIdleGapBuckets() []float64 { return farm.IdleGapBuckets() }

// ControlWindowRespBuckets returns the telemetry windows' response-time
// histogram bucket bounds.
func ControlWindowRespBuckets() []float64 { return farm.RespBuckets() }
