package diskpack

import (
	"context"

	"diskpack/internal/coord"
	"diskpack/internal/farm"
)

// This file exports the work-stealing sweep coordinator
// (internal/coord) and the streaming point-result seam it is built on:
// serve any FarmSweep as an HTTP point queue (ServeSweep), join from
// any machine as a pull-based worker (WorkSweep), and get back a
// result byte-identical to the single-process RunSweep — with leases
// absorbing stragglers and dead workers, and an incremental journal
// bounding a coordinator crash to one point. cmd/disksim wires the
// same calls as -serve and -work.

// Coordination types (see internal/coord).
type (
	// SweepCoordinator owns a compiled grid's point queue and its HTTP
	// protocol; use it directly to embed the coordinator in your own
	// server (ServeSweep bundles the common listen-and-wait loop).
	SweepCoordinator = coord.Coordinator
	// SweepCoordConfig parameterizes a coordinator: lease timeout,
	// lease batch size, crash-journal path, post-drain linger.
	SweepCoordConfig = coord.Config
	// SweepWorkerConfig parameterizes a pull-based worker: name,
	// per-point parallelism, poll interval, transient-failure budget.
	SweepWorkerConfig = coord.WorkerConfig
	// SweepWorkerStats summarizes one worker's contribution.
	SweepWorkerStats = coord.WorkStats
	// FarmCompiledSweep is a sweep compiled against a seed: points
	// executable one at a time, foldable back into the exact RunSweep
	// result — the seam the coordinator, shards, and RunSweep share.
	FarmCompiledSweep = farm.CompiledSweep
)

// NewSweepCoordinator compiles the sweep into a point queue (recovering
// journaled points when the config names a journal) without starting a
// server — expose Handler() wherever you like and Wait for the result.
func NewSweepCoordinator(sweep FarmSweep, seed int64, cfg SweepCoordConfig) (*SweepCoordinator, error) {
	return coord.New(sweep, seed, cfg)
}

// ServeSweep runs the sweep as a work-stealing coordinator on addr
// until every point has been pulled, executed, and streamed back by
// WorkSweep workers (any number, joining or dying mid-run), then
// returns the result — byte-identical to RunSweep(sweep, seed, ...) of
// the same grid and seed. Cancelling the context aborts with the
// journal (if configured) intact for a restart. On success the journal
// is also left on disk — it is the result's only durable copy until
// the caller persists it; delete the file once the result is safe.
func ServeSweep(ctx context.Context, sweep FarmSweep, seed int64, addr string, cfg SweepCoordConfig) (*FarmSweepResult, error) {
	return coord.Serve(ctx, sweep, seed, addr, cfg)
}

// WorkSweep joins the coordinator at url as a pull-based worker and
// returns when the grid drains (or the context is cancelled — the
// worker's leases then simply expire and re-queue).
func WorkSweep(ctx context.Context, url string, cfg SweepWorkerConfig) (SweepWorkerStats, error) {
	return coord.Work(ctx, url, cfg)
}

// CompileSweep expands a sweep's grid against a seed for point-at-a-
// time execution: RunPoint(i) executes one point exactly as RunSweep
// would, and Assemble folds a complete result set back into the
// byte-identical RunSweep result.
func CompileSweep(sweep FarmSweep, seed int64) (*FarmCompiledSweep, error) {
	return farm.Compile(sweep, seed)
}
