package diskpack

import (
	"diskpack/internal/disk"
	"diskpack/internal/farm"
	"diskpack/internal/policy"
)

// This file exports the reliability axis: the spin-cycle wear model
// (internal/disk), the cycle-capped spin-down policy (internal/policy),
// and the redundancy-group failure/rebuild machinery a FarmSpec opts
// into through its Reliability field (internal/storage via
// internal/farm). Failure schedules are pure functions of (spec, seed)
// — byte-identical across repeats, worker counts, shards, and the
// coordinator — and every run reports modeled duty figures
// (CyclesPerDay, AFR) whether or not failures are injected.

// Reliability types.
type (
	// FarmReliability opts a spec into failure injection: redundancy
	// group size, rebuild volume, check cadence, and the wear model.
	FarmReliability = farm.ReliabilitySpec
	// WearParams parameterizes the spin-cycle wear model of a drive:
	// rated start/stop cycles, spec-sheet AFR, and cycle wear.
	WearParams = disk.WearParams
	// CycleBudgetPolicy is a fixed-threshold spin-down policy that
	// stops spinning down once its start/stop cycle allowance — so many
	// cycles per disk-day — is spent.
	CycleBudgetPolicy = policy.CycleBudget
)

// Spin-down policy kinds of the reliability axis (extending the kinds
// in scenario.go).
const (
	// SpinTailAware is the tunable fixed-threshold policy the online
	// control plane retunes between windows.
	SpinTailAware = farm.SpinTailAware
	// SpinCycleBudget is the cycle-capped policy: a fixed threshold
	// that arms only while spin-down cycles remain in the budget.
	SpinCycleBudget = farm.SpinCycleBudget
)

// SelectMinEnergySLOAFR picks the lowest-energy sweep point meeting
// both the response-time SLO (Selector.MaxP95) and the annual-failure-
// rate budget (Selector.MaxAFR).
const SelectMinEnergySLOAFR = farm.SelectMinEnergySLOAFR

// DefaultWearParams returns the wear model of the reference drive:
// 50,000 rated start/stop cycles, 0.34% spec-sheet AFR.
func DefaultWearParams() WearParams { return disk.DefaultWear() }

// CycleCapSpinPolicy returns a cycle-capped spin-down spec: threshold
// seconds of idleness (0 = the drive's break-even time) with at most
// perDay spin-down cycles per disk-day.
func CycleCapSpinPolicy(seconds, perDay float64) FarmSpin {
	return farm.CycleCapSpin(seconds, perDay)
}

// NewCycleBudgetPolicy builds the cycle-capped policy directly for
// simulator-level use (threshold 0 = the drive's break-even time).
func NewCycleBudgetPolicy(p DiskParams, threshold, perDay float64) *CycleBudgetPolicy {
	return policy.NewCycleBudget(p, threshold, perDay)
}
