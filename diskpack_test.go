package diskpack

import (
	"bytes"
	"context"
	"encoding/json"
	"math"
	"net"
	"testing"
	"time"
)

// TestQuickstartFlow exercises the documented package-level workflow
// end to end through the public API only.
func TestQuickstartFlow(t *testing.T) {
	wl := Table1Workload(4, 1)
	wl.NumFiles = 1500
	wl.MaxSize = wl.MaxSize / 25 // keep per-file loads feasible at this n
	tr, err := wl.Build()
	if err != nil {
		t.Fatal(err)
	}
	items, err := ItemsFromTrace(tr, DefaultDiskParams(), 0.7)
	if err != nil {
		t.Fatal(err)
	}
	alloc, err := Pack(items)
	if err != nil {
		t.Fatal(err)
	}
	if alloc.NumDisks < LowerBoundDisks(items) {
		t.Fatalf("packed %d disks below lower bound %d", alloc.NumDisks, LowerBoundDisks(items))
	}
	farm := alloc.NumDisks + 2
	res, err := Simulate(tr, alloc.DiskOf, SimConfig{
		NumDisks:      farm,
		IdleThreshold: BreakEvenThreshold,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.AvgPower <= 0 || res.Completed == 0 {
		t.Fatalf("implausible results: %+v", res)
	}
	if res.PowerSavingRatio <= 0 {
		t.Fatalf("no power saving vs no-policy baseline: %v", res.PowerSavingRatio)
	}
}

func TestPackGroupedPublicAPI(t *testing.T) {
	items := []Item{
		{ID: 0, Size: 0.1, Load: 0.3},
		{ID: 1, Size: 0.1, Load: 0.3},
		{ID: 2, Size: 0.1, Load: 0.3},
		{ID: 3, Size: 0.1, Load: 0.3},
	}
	a, err := PackGrouped(items, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.DiskOf) != 4 {
		t.Fatalf("assignment: %+v", a)
	}
	if got := Rho(items); got != 0.3 {
		t.Fatalf("Rho=%v want 0.3", got)
	}
}

func TestDefaultDiskParamsBreakEven(t *testing.T) {
	p := DefaultDiskParams()
	if be := p.BreakEvenThreshold(); math.Abs(be-53.3) > 0.05 {
		t.Fatalf("break-even %v, paper says 53.3 s", be)
	}
}

func TestNERSCTraceConfigMatchesPaperCounts(t *testing.T) {
	c := NERSCTrace(1)
	if c.NumFiles != 88631 || c.NumRequests != 115832 {
		t.Fatalf("NERSC config %d files / %d requests", c.NumFiles, c.NumRequests)
	}
}

func TestRunExperimentRegistry(t *testing.T) {
	names := ExperimentNames()
	if len(names) == 0 {
		t.Fatal("no experiments registered")
	}
	tables, err := RunExperiment("table2", ExperimentOptions{Scale: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 1 || tables[0].Name != "table2" {
		t.Fatalf("unexpected tables: %v", tables)
	}
	if _, err := RunExperiment("no-such-figure", ExperimentOptions{Scale: 1, Seed: 1}); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestItemsFromTraceRejectsOversize(t *testing.T) {
	tr := &Trace{
		Files:    []FileInfo{{ID: 0, Size: DefaultDiskParams().CapacityBytes * 2, Rate: 0}},
		Duration: 1,
	}
	if _, err := ItemsFromTrace(tr, DefaultDiskParams(), 0.5); err == nil {
		t.Fatal("oversize file accepted")
	}
}

// TestShardSweepPublicAPI exercises the distributed-sweep surface end
// to end through the root package: shard a grid, run the shards through
// the JSON codecs, merge, and require equality with RunSweep.
func TestShardSweepPublicAPI(t *testing.T) {
	wl := Table1Workload(2, 0)
	wl.NumFiles = 300
	wl.MinSize = wl.MinSize / 125
	wl.MaxSize = wl.MaxSize / 125
	sweep := FarmSweep{
		Name: "api-grid",
		Base: FarmSpec{
			Name:     "api-grid",
			Workload: SyntheticFarmWorkload(wl),
			Alloc:    PackedAlloc(0.7),
		},
		Axes:   []FarmAxis{{Kind: AxisSpinThreshold, Values: []float64{30, 600}}},
		Select: FarmSelector{Kind: SelectKnee},
	}
	direct, err := RunSweep(sweep, 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	shards, err := ShardSweep(sweep, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	var results []FarmShardResult
	for _, m := range shards {
		var buf bytes.Buffer
		if err := EncodeSweepShard(&buf, m); err != nil {
			t.Fatal(err)
		}
		dec, err := DecodeSweepShard(&buf)
		if err != nil {
			t.Fatal(err)
		}
		res, err := RunSweepShard(*dec, nil, 0)
		if err != nil {
			t.Fatal(err)
		}
		buf.Reset()
		if err := EncodeSweepShardResult(&buf, *res); err != nil {
			t.Fatal(err)
		}
		back, err := DecodeSweepShardResult(&buf)
		if err != nil {
			t.Fatal(err)
		}
		results = append(results, *back)
	}
	merged, err := MergeSweep(results)
	if err != nil {
		t.Fatal(err)
	}
	want, err := json.Marshal(direct)
	if err != nil {
		t.Fatal(err)
	}
	got, err := json.Marshal(merged)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(want, got) {
		t.Fatal("merged shard results differ from the single-process sweep")
	}
	if merged.Best < 0 {
		t.Fatal("merged sweep selected no operating point")
	}
}

// TestServeWorkSweepPublicAPI exercises the elastic-pool surface end to
// end through the root package: ServeSweep on a loopback port, one
// WorkSweep worker pulling the grid, and a result byte-identical to
// RunSweep. CompileSweep's point-at-a-time seam is checked against the
// same reference.
func TestServeWorkSweepPublicAPI(t *testing.T) {
	wl := Table1Workload(2, 0)
	wl.NumFiles = 300
	wl.MinSize = wl.MinSize / 125
	wl.MaxSize = wl.MaxSize / 125
	sweep := FarmSweep{
		Name: "api-pool",
		Base: FarmSpec{
			Name:     "api-pool",
			Workload: SyntheticFarmWorkload(wl),
			Alloc:    PackedAlloc(0.7),
		},
		Axes:   []FarmAxis{{Kind: AxisSpinThreshold, Values: []float64{30, 600}}},
		Select: FarmSelector{Kind: SelectKnee},
	}
	direct, err := RunSweep(sweep, 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	want, err := json.Marshal(direct)
	if err != nil {
		t.Fatal(err)
	}

	comp, err := CompileSweep(sweep, 3)
	if err != nil {
		t.Fatal(err)
	}
	pr, err := comp.RunPoint(0)
	if err != nil {
		t.Fatal(err)
	}
	if pr.Metrics == nil || pr.Metrics.Energy != direct.Points[0].Metrics.Energy {
		t.Fatal("CompileSweep.RunPoint differs from the RunSweep point")
	}

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	addrCh := make(chan string, 1)
	type outcome struct {
		res *FarmSweepResult
		err error
	}
	servedCh := make(chan outcome, 1)
	go func() {
		res, err := ServeSweep(ctx, sweep, 3, "127.0.0.1:0", SweepCoordConfig{
			BatchSize: 1,
			Linger:    time.Millisecond,
			OnListen:  func(a net.Addr) { addrCh <- a.String() },
		})
		servedCh <- outcome{res, err}
	}()
	var addr string
	select {
	case addr = <-addrCh:
	case served := <-servedCh:
		t.Fatalf("ServeSweep exited before listening: res=%v err=%v", served.res, served.err)
	}
	stats, err := WorkSweep(ctx, "http://"+addr, SweepWorkerConfig{Name: "api-worker", Parallel: 2})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Points != sweep.NumPoints() {
		t.Errorf("worker computed %d points, grid has %d", stats.Points, sweep.NumPoints())
	}
	served := <-servedCh
	if served.err != nil {
		t.Fatal(served.err)
	}
	got, err := json.Marshal(served.res)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(want, got) {
		t.Fatal("ServeSweep result differs from the single-process RunSweep")
	}
}
