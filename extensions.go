package diskpack

import (
	"diskpack/internal/disk"
	"diskpack/internal/model"
	"diskpack/internal/policy"
	"diskpack/internal/reorg"
	"diskpack/internal/trace"
)

// This file exports the extension subsystems built on the paper's
// related-work and future-work sections: dynamic power-management
// policies (Section 2), the analytic M/G/1 model behind the load
// constraint, and semi-dynamic reorganization (Sections 1 and 6).

// Spin-down policy types (see internal/policy).
type (
	// SpinPolicy decides how long a disk idles before spinning down.
	SpinPolicy = disk.SpinPolicy
	// FixedPolicy is a constant idleness threshold (the paper's
	// policy; 2-competitive at the break-even time).
	FixedPolicy = policy.Fixed
	// AdaptivePolicy learns the threshold from observed idle gaps.
	AdaptivePolicy = policy.Adaptive
	// RandomizedPolicy draws timeouts from the optimal e/(e−1)-
	// competitive distribution.
	RandomizedPolicy = policy.Randomized
)

// NewBreakEvenPolicy returns the paper's fixed break-even policy for a
// drive.
func NewBreakEvenPolicy(p DiskParams) *FixedPolicy { return policy.NewBreakEven(p) }

// NewAdaptivePolicy returns an adaptive threshold policy centred on
// the drive's break-even time.
func NewAdaptivePolicy(p DiskParams) *AdaptivePolicy { return policy.NewAdaptive(p) }

// NewRandomizedPolicy returns the randomized e/(e−1)-competitive
// policy.
func NewRandomizedPolicy(p DiskParams, seed int64) *RandomizedPolicy {
	return policy.NewRandomized(p, seed)
}

// Analytic model types (see internal/model).
type (
	// DiskQueue is a per-disk M/G/1 load summary.
	DiskQueue = model.DiskLoad
	// FarmPrediction is the closed-form counterpart of SimResults.
	FarmPrediction = model.FarmPrediction
)

// AnalyzeAllocation computes per-disk M/G/1 statistics for an
// allocation.
func AnalyzeAllocation(files []trace.FileInfo, assign []int, numDisks int, params DiskParams) ([]DiskQueue, error) {
	return model.AnalyzeAssignment(files, assign, numDisks, params)
}

// PredictFarm estimates farm power and response analytically for a
// fixed idleness threshold.
func PredictFarm(loads []DiskQueue, params DiskParams, threshold float64) FarmPrediction {
	return model.PredictFarm(loads, params, threshold)
}

// LoadConstraintForResponse returns the largest load constraint L whose
// predicted M/G/1 mean response stays within budget — the inverse map
// behind the paper's Figure 4.
func LoadConstraintForResponse(budget, meanService, secondMomentService float64) float64 {
	return model.LoadConstraintForResponse(budget, meanService, secondMomentService)
}

// Reorganization types (see internal/reorg).
type (
	// ReorgConfig parameterizes semi-dynamic operation.
	ReorgConfig = reorg.Config
	// ReorgResult aggregates a multi-epoch run.
	ReorgResult = reorg.Result
)

// RunSemiDynamic splits the trace into epochs, reorganizing the
// allocation between them from measured access statistics (the paper's
// Section 1 semi-dynamic mode; set Incremental for the Section 6
// deviation-triggered migration rule).
func RunSemiDynamic(tr *Trace, cfg ReorgConfig) (*ReorgResult, error) {
	return reorg.Run(tr, cfg)
}
