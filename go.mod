module diskpack

go 1.24
