// Package diskpack is a Go reproduction of "Analysis of Trade-Off
// Between Power Saving and Response Time in Disk Storage Systems"
// (Otoo, Rotem & Tsao, LBNL, 2009).
//
// The library allocates files to disks so that the fewest possible
// disks carry the workload — subject to a per-disk load (response-time)
// constraint — letting the remaining disks spin down into standby. The
// allocation problem is the two-dimensional vector packing problem
// (2DVPP); Pack implements the paper's O(n log n) approximation with
// the Theorem 1 guarantee C ≤ C*/(1−ρ) + 1.
//
// A discrete-event simulator of a multi-disk storage farm (power-state
// machine per drive, idleness-threshold spin-down, optional LRU front
// cache) measures the energy/response-time trade-off; workload
// generators reproduce the paper's synthetic Table 1 workload and a
// statistical clone of the NERSC 30-day read trace.
//
// Quick start:
//
//	wl := diskpack.Table1Workload(4, 1) // R = 4 req/s, seed 1
//	tr, _ := wl.Build()
//	items, _ := diskpack.ItemsFromTrace(tr, diskpack.DefaultDiskParams(), 0.7)
//	alloc, _ := diskpack.Pack(items)
//	res, _ := diskpack.Simulate(tr, alloc.DiskOf, diskpack.SimConfig{
//		NumDisks:      100,
//		IdleThreshold: diskpack.BreakEvenThreshold,
//	})
//	fmt.Printf("power %.0f W, mean response %.2f s\n", res.AvgPower, res.RespMean)
//
// Whole experiments are declared, not wired: a FarmSpec names the farm
// layout (including heterogeneous drive groups), allocation strategy,
// spin-down policy, workload, and cache, and RunFarm compiles it into a
// simulation returning one FarmMetrics — a pure function of
// (spec, seed). A scenario catalogue (FarmScenarios / RunScenario)
// ships ready-made points including diurnal, bursty, heterogeneous,
// and latency-SLO-sweep scenarios; run them with cmd/disksim
// -scenario.
//
// See the examples/ directory for complete programs and cmd/experiments
// for the harness that regenerates every table and figure of the paper.
package diskpack

import (
	"diskpack/internal/core"
	"diskpack/internal/disk"
	"diskpack/internal/exp"
	"diskpack/internal/storage"
	"diskpack/internal/trace"
	"diskpack/internal/workload"
)

// Packing types (see internal/core).
type (
	// Item is one file to allocate: size and load normalized to the
	// per-disk capacities, both in [0, 1].
	Item = core.Item
	// Assignment maps each item to a disk.
	Assignment = core.Assignment
)

// Pack allocates items with the paper's Pack_Disks algorithm
// (O(n log n), Theorem 1 bound from optimal).
func Pack(items []Item) (*Assignment, error) { return core.PackDisks(items) }

// PackGrouped allocates with the Pack_Disks_v variant: groups of v
// disks filled round-robin, de-clustering batches of similar files.
// The paper finds v = 4 ideal on the NERSC workload.
func PackGrouped(items []Item, v int) (*Assignment, error) { return core.PackDisksV(items, v) }

// Rho returns ρ = maxᵢ max(sᵢ, lᵢ), the quantity in the Theorem 1
// guarantee.
func Rho(items []Item) float64 { return core.Rho(items) }

// LowerBoundDisks returns ⌈max(Σs, Σl)⌉, a lower bound on the optimal
// disk count.
func LowerBoundDisks(items []Item) int { return core.LowerBoundDisks(items) }

// Disk model types (see internal/disk).
type (
	// DiskParams describes a drive's performance and power envelope.
	DiskParams = disk.Params
)

// DefaultDiskParams returns the Seagate ST3500630AS drive of the
// paper's Table 2.
func DefaultDiskParams() DiskParams { return disk.DefaultParams() }

// NeverSpinDown disables the spin-down policy when used as an idleness
// threshold.
var NeverSpinDown = disk.NeverSpinDown

// BreakEvenThreshold selects the drive's break-even idleness threshold
// (53.3 s for the default drive) when used as SimConfig.IdleThreshold.
const BreakEvenThreshold = storage.BreakEven

// Workload and trace types.
type (
	// Trace is a file population plus a timed request stream.
	Trace = trace.Trace
	// FileInfo describes one file (size, expected request rate).
	FileInfo = trace.FileInfo
	// Request is one whole-file read.
	Request = trace.Request
	// SyntheticWorkload generates the paper's Table 1 workload.
	SyntheticWorkload = workload.Synthetic
	// NERSCWorkload synthesizes the paper's Section 5.1 trace.
	NERSCWorkload = workload.NERSC
)

// Table1Workload returns the paper's synthetic workload configuration
// (40,000 files, Zipf θ = log 0.6/log 0.4, inverse-Zipf sizes) at the
// given Poisson arrival rate.
func Table1Workload(arrivalRate float64, seed int64) SyntheticWorkload {
	return workload.DefaultSynthetic(arrivalRate, seed)
}

// NERSCTrace returns the configuration of the NERSC-log synthesizer
// (88,631 files, 115,832 requests / 720 h, mean size 544 MB,
// size ⊥ frequency, diurnal arrivals).
func NERSCTrace(seed int64) NERSCWorkload { return workload.DefaultNERSC(seed) }

// ItemsFromTrace converts a trace's file population into packing items:
// sizes against the drive capacity and loads lᵢ = rateᵢ·serviceTimeᵢ
// against the load constraint capL (a fraction of the drive's transfer
// capability, the paper's L).
func ItemsFromTrace(tr *Trace, params DiskParams, capL float64) ([]Item, error) {
	sizes := make([]int64, len(tr.Files))
	rates := make([]float64, len(tr.Files))
	for i, f := range tr.Files {
		sizes[i] = f.Size
		rates[i] = f.Rate
	}
	return core.BuildItems(sizes, rates, params.ServiceTime, params.CapacityBytes, capL)
}

// Simulation types (see internal/storage).
type (
	// SimConfig parameterizes a farm simulation.
	SimConfig = storage.Config
	// SimResults reports energy, response times, and cache behaviour.
	SimResults = storage.Results
)

// Simulate runs the trace against a disk farm where file f resides on
// disk assign[f], returning energy and response-time measurements.
func Simulate(tr *Trace, assign []int, cfg SimConfig) (*SimResults, error) {
	return storage.Run(tr, assign, cfg)
}

// Experiment types (see internal/exp).
type (
	// ExperimentOptions configures scale, seed, and parallelism.
	ExperimentOptions = exp.Options
	// ResultTable is a named grid of experiment results.
	ResultTable = exp.Table
)

// RunExperiment regenerates the named table or figure of the paper
// ("table1", "table2", "fig2".."fig6", "vsweep", "packquality",
// "scaling", or "all").
func RunExperiment(name string, opts ExperimentOptions) ([]*ResultTable, error) {
	return exp.Run(name, opts)
}

// ExperimentNames lists the available experiments in canonical order.
func ExperimentNames() []string { return exp.Names() }
