// Benchmarks regenerating every table and figure of the paper's
// evaluation, one per artifact. Each runs its experiment at a reduced
// scale (benchScale) per iteration and reports the headline quantity
// of that artifact as a custom metric, so `go test -bench=.` both
// exercises the full pipeline and prints the reproduced values.
// cmd/experiments -scale 1 produces the paper-scale numbers recorded in
// EXPERIMENTS.md.
package diskpack

import (
	"fmt"
	"io"
	"math/rand"
	"strconv"
	"testing"

	"diskpack/internal/control"
	"diskpack/internal/core"
	"diskpack/internal/disk"
	"diskpack/internal/exp"
	"diskpack/internal/farm"
	"diskpack/internal/obs"
	"diskpack/internal/storage"
	"diskpack/internal/trace"
	"diskpack/internal/workload"
)

// benchScale keeps a full experiment sweep around a second per
// iteration.
const benchScale = 0.05

func benchOpts() exp.Options { return exp.Options{Scale: benchScale, Seed: 1} }

// BenchmarkTable1 regenerates the Table 1 workload parameters and
// reports the realized total space requirement (paper: 12.86 TB).
func BenchmarkTable1(b *testing.B) {
	var totalTB float64
	for i := 0; i < b.N; i++ {
		t, err := exp.Table1(exp.Options{Scale: 1, Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
		totalTB = t.Rows[3][2]
	}
	b.ReportMetric(totalTB, "total-TB")
}

// BenchmarkTable2 regenerates the drive model constants and reports the
// derived break-even idleness threshold (paper: 53.3 s).
func BenchmarkTable2(b *testing.B) {
	var breakEven float64
	for i := 0; i < b.N; i++ {
		t, err := exp.Table2(exp.Options{Scale: 1, Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
		breakEven = t.Rows[10][2]
	}
	b.ReportMetric(breakEven, "break-even-s")
}

// BenchmarkFigure2 regenerates the power-saving-vs-R sweep and reports
// the saving ratio at R=4, L=80% (paper: >0.6 for R ≤ 4).
func BenchmarkFigure2(b *testing.B) {
	var saving float64
	for i := 0; i < b.N; i++ {
		f2, _, err := exp.Fig23(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		col, _ := f2.Column("L=80%")
		saving = col[3] // R = 4
	}
	b.ReportMetric(saving, "saving@R4L80")
}

// BenchmarkFigure3 regenerates the response-time-ratio sweep and
// reports the ratio at R=6, L=80% (paper: ratios within 0.5–2.5).
func BenchmarkFigure3(b *testing.B) {
	var ratio float64
	for i := 0; i < b.N; i++ {
		_, f3, err := exp.Fig23(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		col, _ := f3.Column("L=80%")
		ratio = col[5] // R = 6
	}
	b.ReportMetric(ratio, "resp-ratio@R6L80")
}

// BenchmarkFigure4 regenerates the power/response trade-off versus L at
// R=6 and reports the power spread between L=0.4 and L=0.9 (paper:
// power falls as L rises).
func BenchmarkFigure4(b *testing.B) {
	var drop float64
	for i := 0; i < b.N; i++ {
		f4, err := exp.Fig4(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		power, _ := f4.Column("Power(W)")
		drop = power[0] - power[len(power)-1]
	}
	b.ReportMetric(drop, "power-drop-W")
}

// BenchmarkFigure5 regenerates the power-saving-vs-threshold sweep on
// the NERSC workload and reports Pack_Disk's saving at the 0.5 h
// threshold (paper: ≈0.85 on a 96-disk farm).
func BenchmarkFigure5(b *testing.B) {
	var saving float64
	for i := 0; i < b.N; i++ {
		f5, _, err := exp.Fig56(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		col, _ := f5.Column("Pack_Disk")
		saving = col[4] // 0.5 h
	}
	b.ReportMetric(saving, "saving@0.5h")
}

// BenchmarkFigure6 regenerates the response-time-vs-threshold sweep and
// reports RND's mean response at the 0.5 h threshold (paper: ≈10 s,
// the threshold needed to keep random placement under 10 s).
func BenchmarkFigure6(b *testing.B) {
	var resp float64
	for i := 0; i < b.N; i++ {
		_, f6, err := exp.Fig56(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		col, _ := f6.Column("RND")
		resp = col[4] // 0.5 h
	}
	b.ReportMetric(resp, "RND-resp-s@0.5h")
}

// BenchmarkVSweep regenerates the Pack_Disk_v ablation (paper: v = 4
// ideal) and reports the response-time gain of v=4 over v=1. It runs
// at a larger scale than the other benches: on a farm of fewer than
// ~10 disks the group variant spreads over the whole farm and the
// comparison loses meaning.
func BenchmarkVSweep(b *testing.B) {
	var gain float64
	for i := 0; i < b.N; i++ {
		t, err := exp.VSweep(exp.Options{Scale: 0.15, Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
		resp, _ := t.Column("RespTime(s)")
		gain = resp[0] - resp[3] // v=1 minus v=4
	}
	b.ReportMetric(gain, "v4-resp-gain-s")
}

// BenchmarkPackQuality regenerates the allocator comparison and reports
// Pack_Disks' gap to the lower bound at L=0.7 (Theorem 1 in practice).
func BenchmarkPackQuality(b *testing.B) {
	var gap float64
	for i := 0; i < b.N; i++ {
		t, err := exp.PackQuality(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		lb, _ := t.Column("LowerBound")
		pd, _ := t.Column("Pack_Disks")
		gap = pd[3] - lb[3]
	}
	b.ReportMetric(gap, "disks-over-LB@L0.7")
}

// BenchmarkPolicies regenerates the spin-down policy ablation and
// reports the spin-up reduction of the adaptive policy vs the fixed
// break-even threshold under Pack_Disks.
func BenchmarkPolicies(b *testing.B) {
	var reduction float64
	for i := 0; i < b.N; i++ {
		t, err := exp.Policies(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		spin, _ := t.Column("Pack:spinups")
		if spin[2] > 0 {
			reduction = 1 - spin[3]/spin[2] // adaptive vs break-even
		}
	}
	b.ReportMetric(reduction, "adaptive-spinup-cut")
}

// BenchmarkAnalysis regenerates the analytic-vs-simulated validation
// and reports the worst relative power error across the L sweep.
func BenchmarkAnalysis(b *testing.B) {
	var worst float64
	for i := 0; i < b.N; i++ {
		t, err := exp.Analysis(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		pred, _ := t.Column("PredPower(W)")
		sim, _ := t.Column("SimPower(W)")
		worst = 0
		for j := range pred {
			rel := (pred[j] - sim[j]) / sim[j]
			if rel < 0 {
				rel = -rel
			}
			if rel > worst {
				worst = rel
			}
		}
	}
	b.ReportMetric(worst*100, "max-power-err-%")
}

// BenchmarkReorg regenerates the semi-dynamic reorganization
// comparison at full scale (cheap: packing dominates) and reports the
// migration saving of the incremental §6 rule over full repacking.
func BenchmarkReorg(b *testing.B) {
	var ratio float64
	for i := 0; i < b.N; i++ {
		t, err := exp.Reorg(exp.Options{Scale: 1, Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
		mig, _ := t.Column("MigratedGB")
		if mig[1] > 0 {
			ratio = mig[2] / mig[1] // incremental / full
		}
	}
	b.ReportMetric(ratio, "incr-migration-frac")
}

// BenchmarkFarmRun exercises the scenario engine end to end on a
// mid-size spec — workload synthesis, Pack_Disks allocation, and the
// farm simulation all inside farm.Run — so engine-layer regressions
// (extra allocations, slower compile path) show up in the perf
// trajectory alongside the per-artifact benchmarks. It reports the
// run's power saving as a stability check on the engine's output.
func BenchmarkFarmRun(b *testing.B) {
	wl := workload.DefaultSynthetic(6, 0)
	wl.NumFiles = 4000
	wl.MinSize /= 10
	wl.MaxSize /= 10
	spec := farm.Spec{
		Name:     "bench",
		FarmSize: 40,
		Workload: farm.SyntheticWorkload(wl),
		Alloc:    farm.Packed(0.7),
		Spin:     farm.SpinSpec{Kind: farm.SpinBreakEven},
	}
	var saving float64
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m, err := farm.Run(spec, 1)
		if err != nil {
			b.Fatal(err)
		}
		saving = m.PowerSavingRatio
	}
	b.ReportMetric(saving, "saving")
}

// BenchmarkSweep times the parallel grid engine on the
// threshold × farm-size fixture grid at several worker counts. The
// workers=1 sub-benchmark is the serial baseline; the perf trajectory
// tracks the speedup of the pooled runs over it (the grid's points are
// independent simulations, so 4 workers should cut wall-clock by well
// over 2×).
func BenchmarkSweep(b *testing.B) {
	wl := workload.DefaultSynthetic(4, 0)
	wl.NumFiles = 1500
	wl.MinSize /= 25
	wl.MaxSize /= 25
	sweep := farm.Sweep{
		Name: "bench",
		Base: farm.Spec{
			Name:     "bench",
			Workload: farm.SyntheticWorkload(wl),
			Alloc:    farm.Packed(0.7),
		},
		Axes: []farm.Axis{
			{Kind: farm.AxisSpinThreshold, Values: []float64{30, 120, 600, 1800}},
			{Kind: farm.AxisFarmSize, Values: []float64{12, 16, 20, 24}},
		},
	}
	// Each leg gates against its own committed baseline, and the
	// workers=4 leg additionally reports its measured speedup over the
	// workers=1 leg — on a multi-core machine that number is the
	// scaling check; on a single core it exposes the pool's overhead
	// (slightly below 1.0) instead of pretending to measure scaling.
	// The committed baselines were recorded on a single-core container
	// (see EXPERIMENTS.md §Performance), which is why workers=4 is not
	// faster there: 16 points × ~8 ms share one core, so the delta is
	// pure pool overhead. The gate still catches regressions — each
	// leg's ns/op is compared to its own history, never across legs.
	var refNs float64
	for _, workers := range []int{1, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			var saving float64
			for i := 0; i < b.N; i++ {
				res, err := farm.RunSweep(sweep, 1, workers)
				if err != nil {
					b.Fatal(err)
				}
				saving = res.Points[0].Metrics.PowerSavingRatio
			}
			b.ReportMetric(saving, "saving@p0")
			ns := float64(b.Elapsed().Nanoseconds()) / float64(b.N)
			if workers == 1 {
				refNs = ns
			} else if refNs > 0 {
				b.ReportMetric(refNs/ns, "speedup-vs-1worker")
			}
		})
	}
}

// BenchmarkControlEpoch times the online control plane: the ON/OFF
// fixture run closed-loop under the tail-budget controller at a 200 s
// epoch (~40 windows per run), against the identical open-loop run.
// The controlled/open-loop ns/op delta in BENCH_ci.json is the control
// plane's overhead — telemetry windows plus controller decisions.
func BenchmarkControlEpoch(b *testing.B) {
	sc, ok := farm.Lookup("controlled-bursty")
	if !ok {
		b.Fatal("controlled-bursty not registered")
	}
	spec := sc.Spec
	cs := *spec.Control
	cs.Epoch = 200
	spec.Control = &cs
	open := spec
	open.Control = nil

	b.Run("open-loop", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := farm.Run(open, 1); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("controlled", func(b *testing.B) {
		b.ReportAllocs()
		windows := 0
		for i := 0; i < b.N; i++ {
			res, err := control.RunSpec(spec, 1)
			if err != nil {
				b.Fatal(err)
			}
			windows = len(res.Windows)
		}
		b.ReportMetric(float64(windows), "windows")
	})
}

// BenchmarkMillionDiskEpoch is the ROADMAP scale target in benchmark
// form: one epoch of a ~10⁶-disk farm at the break-even threshold. The
// farm is mostly cold — every disk arms an idle timer at t=0 and spins
// down at 53.3 s — while 10⁵ requests land on a 128k-file active
// subset, forcing spin-ups and queueing behind wake-ups. The dominant
// cost is the event kernel itself (≈2.2M timer events beyond the
// request path), so this benchmark tracks exactly what the calendar
// queue and free list are for. Reports wall-clock request throughput.
// millionDiskSetup builds the 2²⁰-disk, 10⁵-request epoch shared by
// the sequential and parallel million-disk benches.
func millionDiskSetup() (*trace.Trace, []int, storage.Config, int) {
	const (
		nDisks  = 1 << 20 // 1,048,576 drives
		nFiles  = 1 << 17 // 131,072 files on distinct disks
		nReqs   = 100_000
		horizon = 120.0 // seconds: past break-even plus spin-up tail
	)
	tr := &trace.Trace{Duration: horizon}
	tr.Files = make([]trace.FileInfo, nFiles)
	assign := make([]int, nFiles)
	for i := range tr.Files {
		tr.Files[i] = trace.FileInfo{ID: i, Size: 64 * disk.MB, Rate: 0.01}
		assign[i] = (i * (nDisks / nFiles)) % nDisks
	}
	rng := rand.New(rand.NewSource(9))
	tr.Requests = make([]trace.Request, nReqs)
	for r := range tr.Requests {
		tr.Requests[r] = trace.Request{
			Time:   horizon * float64(r) / nReqs,
			FileID: rng.Intn(nFiles),
		}
	}
	return tr, assign, storage.Config{NumDisks: nDisks, IdleThreshold: storage.BreakEven}, nReqs
}

func BenchmarkMillionDiskEpoch(b *testing.B) {
	tr, assign, cfg, nReqs := millionDiskSetup()
	b.ReportAllocs()
	b.ResetTimer()
	var completed int64
	for i := 0; i < b.N; i++ {
		res, err := storage.Run(tr, assign, cfg)
		if err != nil {
			b.Fatal(err)
		}
		completed = res.Completed
	}
	if completed == 0 {
		b.Fatal("no requests completed")
	}
	b.ReportMetric(float64(nReqs*b.N)/b.Elapsed().Seconds(), "req/s")
}

// BenchmarkMillionDiskEpochParallel shards the same epoch across
// worker goroutines. The classic (un-windowed) path needs exactly one
// barrier round, so the workers=1 leg measures the sharding machinery's
// fixed cost and the others measure scaling — near-linear on real
// cores, flat on a single-core machine where the legs gate scheduling
// overhead instead (each leg compares against its own committed
// baseline; see EXPERIMENTS.md §Parallel execution).
func BenchmarkMillionDiskEpochParallel(b *testing.B) {
	tr, assign, cfg, nReqs := millionDiskSetup()
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			b.ResetTimer()
			var completed int64
			for i := 0; i < b.N; i++ {
				res, err := storage.RunParallel(tr, assign, cfg,
					storage.ParallelConfig{Workers: workers, Label: "million-disk"})
				if err != nil {
					b.Fatal(err)
				}
				completed = res.Completed
			}
			if completed == 0 {
				b.Fatal("no requests completed")
			}
			b.ReportMetric(float64(nReqs*b.N)/b.Elapsed().Seconds(), "req/s")
		})
	}
}

// BenchmarkObsOverhead prices the observability layer on a windowed
// mid-size run. The three legs share one spec: "off" is the bare run,
// "nil-sink" installs a zero-value RunObserver (every tap fires, every
// sink is nil — the disabled path must cost nothing, and the nil-sink
// zero-alloc property is pinned exactly in internal/obs), and
// "enabled" records the full trace, telemetry (to io.Discard), and
// metrics registry, rebuilding the recorder each iteration so the
// timeline does not accumulate across runs. The off↔nil-sink delta is
// the price every un-instrumented run pays; off↔enabled is the price
// of -trace-out/-telemetry-out.
func BenchmarkObsOverhead(b *testing.B) {
	wl := workload.DefaultSynthetic(6, 0)
	wl.NumFiles = 4000
	wl.MinSize /= 10
	wl.MaxSize /= 10
	spec := farm.Spec{
		Name:     "bench-obs",
		FarmSize: 40,
		Workload: farm.SyntheticWorkload(wl),
		Alloc:    farm.Packed(0.7),
		Spin:     farm.SpinSpec{Kind: farm.SpinBreakEven},
	}
	runOnce := func(b *testing.B) {
		if _, err := farm.RunStream(spec, 1, 400, nil); err != nil {
			b.Fatal(err)
		}
	}
	b.Run("off", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			runOnce(b)
		}
	})
	b.Run("nil-sink", func(b *testing.B) {
		prev := farm.SetRunObserver(&obs.RunObserver{})
		defer farm.SetRunObserver(prev)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			runOnce(b)
		}
	})
	b.Run("enabled", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			rec := obs.NewTraceRecorder()
			tw := obs.NewTelemetryWriter(io.Discard)
			prev := farm.SetRunObserver(&obs.RunObserver{
				Trace:     rec,
				Telemetry: tw,
				Metrics:   obs.NewRunMetrics(obs.NewRegistry(), farm.RespBuckets()),
			})
			runOnce(b)
			farm.SetRunObserver(prev)
		}
	})
}

// packingInstance builds the skewed instance used by the complexity
// benchmarks (interleaved size- and load-heavy items trigger the
// eviction path).
func packingInstance(n int) []Item {
	rng := rand.New(rand.NewSource(42))
	items := make([]Item, n)
	for i := range items {
		if i%2 == 0 {
			items[i] = Item{ID: i, Size: 0.02 + 0.28*rng.Float64(), Load: 0.01 * rng.Float64()}
		} else {
			items[i] = Item{ID: i, Size: 0.01 * rng.Float64(), Load: 0.02 + 0.28*rng.Float64()}
		}
	}
	return items
}

// BenchmarkPackDisksScaling exercises the Section 3 complexity claim:
// Pack_Disks is O(n log n).
func BenchmarkPackDisksScaling(b *testing.B) {
	for _, n := range []int{1000, 10000, 40000} {
		items := packingInstance(n)
		b.Run(sizeName(n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := Pack(items); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkChangHwangParkScaling is the O(n²) comparator Pack_Disks
// improves upon.
func BenchmarkChangHwangParkScaling(b *testing.B) {
	for _, n := range []int{1000, 10000, 40000} {
		items := packingInstance(n)
		b.Run(sizeName(n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := core.ChangHwangPark(items); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func sizeName(n int) string {
	if n >= 1000 && n%1000 == 0 {
		return strconv.Itoa(n/1000) + "k"
	}
	return strconv.Itoa(n)
}
