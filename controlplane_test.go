package diskpack

import (
	"encoding/json"
	"testing"
)

// lookupScenario finds a catalogue entry through the public listing.
func lookupScenario(t *testing.T, name string) FarmScenario {
	t.Helper()
	for _, sc := range FarmScenarios() {
		if sc.Name == name {
			return sc
		}
	}
	t.Fatalf("scenario %q not in the catalogue", name)
	return FarmScenario{}
}

// TestRunControlledPublicAPI drives a closed-loop run through the root
// exports: deterministic result, telemetry windows present, and the
// same metrics when the controlled spec goes through plain RunFarm.
func TestRunControlledPublicAPI(t *testing.T) {
	spec := lookupScenario(t, "controlled-bursty").Spec
	a, err := RunControlled(spec, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Windows) == 0 || a.Metrics == nil {
		t.Fatal("controlled result missing windows or metrics")
	}
	b, err := RunControlled(spec, 4)
	if err != nil {
		t.Fatal(err)
	}
	aj, _ := json.Marshal(a)
	bj, _ := json.Marshal(b)
	if string(aj) != string(bj) {
		t.Error("RunControlled not deterministic")
	}
	m, err := RunFarm(spec, 4)
	if err != nil {
		t.Fatal(err)
	}
	mj, _ := json.Marshal(m)
	amj, _ := json.Marshal(a.Metrics)
	if string(mj) != string(amj) {
		t.Error("RunFarm on a controlled spec differs from RunControlled metrics")
	}
	if _, err := ParseControllerKind(ControllerTailBudget.String()); err != nil {
		t.Errorf("ParseControllerKind round-trip: %v", err)
	}
}

// TestRunFarmStreamPublicAPI checks the raw telemetry seam export: a
// do-nothing sink reproduces RunFarm, and the histogram bucket bounds
// are exposed.
func TestRunFarmStreamPublicAPI(t *testing.T) {
	spec := lookupScenario(t, "bursty").Spec
	ref, err := RunFarm(spec, 2)
	if err != nil {
		t.Fatal(err)
	}
	windows := 0
	got, err := RunFarmStream(spec, 2, 2000, func(w *ControlWindow, act *FarmActuator) error {
		windows++
		if len(w.Total.IdleGaps) != len(ControlWindowIdleGapBuckets())+1 {
			t.Errorf("idle-gap histogram has %d buckets", len(w.Total.IdleGaps))
		}
		if len(w.Total.RespHist) != len(ControlWindowRespBuckets())+1 {
			t.Errorf("response histogram has %d buckets", len(w.Total.RespHist))
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if windows == 0 {
		t.Fatal("no windows emitted")
	}
	rj, _ := json.Marshal(ref)
	gj, _ := json.Marshal(got)
	if string(rj) != string(gj) {
		t.Error("RunFarmStream diverges from RunFarm")
	}
}
